// Tests for the quantized verification tier: the int8 mirror
// (data/quantized.h), the int8 screen kernels and VerifyBlockQuantized
// (core/kernels.h), and the engine wiring (mirror lifecycle, snapshot
// sidecar, memory accounting) in engine/sharded_engine.h.
//
// The load-bearing property is EXACTNESS: VerifyBlockQuantized must append
// the same ids in the same order as VerifyBlock for every metric, radius,
// tier, and candidate mix — the screen may only change how fast a verdict
// is reached, never the verdict. Engine-level tests assert the same
// bit-identity between quantized-on (the default) and quantized-off
// serving, through churn, snapshots, and concurrent readers.

#include "data/quantized.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/kernels.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "engine/search_engine.h"
#include "engine/sharded_engine.h"
#include "engine/snapshot.h"
#include "lsh/families.h"
#include "util/serialize.h"
#include "util/simd.h"

namespace hybridlsh {
namespace {

namespace fs = std::filesystem;
using util::simd::Tier;

/// Restores the process-wide resolved tier when a test scope ends.
class TierGuard {
 public:
  TierGuard() : saved_(util::simd::ResolvedTier()) {}
  ~TierGuard() { util::simd::SetResolvedTierForTest(saved_); }

 private:
  Tier saved_;
};

std::vector<int8_t> RandomCodes(size_t n, std::mt19937* rng) {
  std::uniform_int_distribution<int> dist(-127, 127);
  std::vector<int8_t> codes(n);
  for (int8_t& c : codes) c = static_cast<int8_t>(dist(*rng));
  return codes;
}

// --- Int8 kernels. -----------------------------------------------------------

TEST(Int8KernelTest, AllTiersMatchTheScalarSumsExactly) {
  std::mt19937 rng(7);
  for (size_t dim : {size_t{1}, size_t{3}, size_t{8}, size_t{15}, size_t{16},
                     size_t{31}, size_t{32}, size_t{33}, size_t{64},
                     size_t{127}, size_t{257}}) {
    for (int rep = 0; rep < 8; ++rep) {
      // Unaligned starts on odd reps: the kernels take raw pointers.
      const std::vector<int8_t> buf_a = RandomCodes(dim + 1, &rng);
      const std::vector<int8_t> buf_b = RandomCodes(dim + 1, &rng);
      const int8_t* a = buf_a.data() + (rep % 2);
      const int8_t* b = buf_b.data() + (rep % 2);
      int64_t ref_l1 = 0, ref_l2 = 0, ref_dot = 0;
      for (size_t d = 0; d < dim; ++d) {
        const int64_t x = a[d], y = b[d];
        ref_l1 += std::abs(x - y);
        ref_l2 += (x - y) * (x - y);
        ref_dot += x * y;
      }
      for (Tier tier : util::simd::SupportedTiers()) {
        const core::kernels::Int8KernelTable& table =
            core::kernels::Int8KernelsForTier(tier);
        // Integer sums are exact in any accumulation order: EQ, not NEAR.
        EXPECT_EQ(table.l1(a, b, dim), ref_l1)
            << "tier " << util::simd::TierName(tier) << " dim " << dim;
        EXPECT_EQ(table.l2sq(a, b, dim), ref_l2)
            << "tier " << util::simd::TierName(tier) << " dim " << dim;
        EXPECT_EQ(table.dot(a, b, dim), ref_dot)
            << "tier " << util::simd::TierName(tier) << " dim " << dim;
      }
    }
  }
}

TEST(Int8KernelTest, NoOverflowAtMaxDimAndExtremeCodes) {
  // The worst case the int32 accumulator must survive: kMaxDim elements at
  // the extremes (l2sq = kMaxDim * 254^2 just fits in int32).
  const size_t dim = data::QuantizedMirror::kMaxDim;
  std::vector<int8_t> a(dim, 127), b(dim, -127);
  const int64_t ref_l2 = static_cast<int64_t>(dim) * 254 * 254;
  ASSERT_LE(ref_l2, std::numeric_limits<int32_t>::max());
  for (Tier tier : util::simd::SupportedTiers()) {
    const core::kernels::Int8KernelTable& table =
        core::kernels::Int8KernelsForTier(tier);
    EXPECT_EQ(table.l1(a.data(), b.data(), dim),
              static_cast<int32_t>(dim * 254));
    EXPECT_EQ(table.l2sq(a.data(), b.data(), dim),
              static_cast<int32_t>(ref_l2));
    EXPECT_EQ(table.dot(a.data(), b.data(), dim),
              static_cast<int32_t>(-static_cast<int64_t>(dim) * 127 * 127));
  }
}

TEST(Int8KernelTest, BlockFormsMatchThePairKernelsExactly) {
  // The block forms gather rows by id and (on avx2) interleave candidate
  // pairs, but integer sums are exact in any order: every tier, every
  // count parity, and every dim tail must reproduce the pair kernels
  // bit-for-bit.
  std::mt19937 rng(19);
  for (size_t dim : {size_t{1}, size_t{16}, size_t{31}, size_t{32},
                     size_t{33}, size_t{64}, size_t{100}}) {
    const size_t rows = 40;
    const std::vector<int8_t> codes = RandomCodes(rows * dim, &rng);
    const std::vector<int8_t> query = RandomCodes(dim, &rng);
    for (size_t count : {size_t{0}, size_t{1}, size_t{7}, size_t{24}}) {
      std::vector<uint32_t> ids(count);
      std::uniform_int_distribution<uint32_t> pick(0, rows - 1);
      for (uint32_t& id : ids) id = pick(rng);
      for (Tier tier : util::simd::SupportedTiers()) {
        const core::kernels::Int8KernelTable& table =
            core::kernels::Int8KernelsForTier(tier);
        const struct {
          int32_t (*pair)(const int8_t*, const int8_t*, size_t);
          void (*block)(const int8_t*, size_t, const uint32_t*, size_t,
                        const int8_t*, int32_t*);
        } forms[] = {{table.l1, table.l1_block},
                     {table.l2sq, table.l2sq_block},
                     {table.dot, table.dot_block}};
        for (const auto& f : forms) {
          std::vector<int32_t> sums(count, -1);
          f.block(codes.data(), dim, ids.data(), count, query.data(),
                  sums.data());
          for (size_t k = 0; k < count; ++k) {
            EXPECT_EQ(sums[k],
                      f.pair(codes.data() + ids[k] * dim, query.data(), dim))
                << "tier " << util::simd::TierName(tier) << " dim " << dim
                << " count " << count << " k " << k;
          }
        }
      }
    }
  }
}

TEST(Int8KernelTest, DispatchFollowsResolvedTier) {
  TierGuard guard;
  for (Tier tier : util::simd::SupportedTiers()) {
    util::simd::SetResolvedTierForTest(tier);
    EXPECT_EQ(core::kernels::Int8Kernels().tier, tier);
  }
}

// --- The quantized mirror. ---------------------------------------------------

TEST(QuantizedMirrorTest, BuildAndIncrementalAppendProduceIdenticalCodes) {
  const data::DenseDataset dataset = data::MakeCorelLike(300, 16, 11);
  const auto whole = data::QuantizedMirror::Build(dataset);
  ASSERT_TRUE(whole.enabled());
  ASSERT_EQ(whole.size(), dataset.size());

  // Rebuild over the full dataset but quantize the second half through
  // AppendRow: the calibration scan covers all rows either way (the engine
  // only appends rows it also calibrated over or flags exact_only), so the
  // codes must match bit for bit.
  auto incremental = data::QuantizedMirror::Build(dataset);
  // Quantization is a pure function of (scale, row): append a copy of each
  // row again and compare against the built codes for the same row.
  for (size_t i = 0; i < dataset.size(); ++i) {
    incremental.AppendRow(dataset.point(i));
  }
  ASSERT_EQ(incremental.size(), 2 * dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_FALSE(incremental.exact_only(dataset.size() + i));
    for (size_t d = 0; d < dataset.dim(); ++d) {
      ASSERT_EQ(incremental.row(dataset.size() + i)[d], whole.row(i)[d])
          << "row " << i << " dim " << d;
    }
  }
}

TEST(QuantizedMirrorTest, OutOfRangeAndNonFiniteRowsAreFlaggedExactOnly) {
  data::DenseDataset dataset(0, 0);
  for (int i = 0; i < 4; ++i) {
    std::vector<float> p(8, 0.5f * static_cast<float>(i + 1));
    dataset.Append(p);
  }
  auto mirror = data::QuantizedMirror::Build(dataset);
  ASSERT_TRUE(mirror.enabled());

  std::vector<float> huge(8, 100.0f);  // far past the calibrated max (2.0)
  mirror.AppendRow(huge.data());
  EXPECT_TRUE(mirror.exact_only(4));
  EXPECT_EQ(mirror.row(4)[0], 127);  // stored clamped, not garbage

  std::vector<float> nan_row(8, std::numeric_limits<float>::quiet_NaN());
  mirror.AppendRow(nan_row.data());
  EXPECT_TRUE(mirror.exact_only(5));

  std::vector<float> fine(8, -1.5f);
  mirror.AppendRow(fine.data());
  EXPECT_FALSE(mirror.exact_only(6));
}

TEST(QuantizedMirrorTest, AllZeroDatasetDisablesTheMirror) {
  const data::DenseDataset zeros(10, 8);
  const auto mirror = data::QuantizedMirror::Build(zeros);
  EXPECT_FALSE(mirror.enabled());
}

TEST(QuantizedMirrorTest, SaveLoadRoundTripAndCorruptionRejection) {
  const data::DenseDataset dataset = data::MakeCorelLike(150, 12, 13);
  auto mirror = data::QuantizedMirror::Build(dataset);
  std::vector<float> huge(12, 1e6f);
  mirror.AppendRow(huge.data());  // one exact_only row must round-trip too

  util::ByteWriter writer;
  mirror.Save(&writer);
  {
    util::ByteReader reader(writer.bytes());
    auto loaded = data::QuantizedMirror::Load(&reader, 12, mirror.size());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_TRUE(reader.ExpectEnd().ok());
    EXPECT_EQ(loaded->dim(), mirror.dim());
    EXPECT_DOUBLE_EQ(loaded->scale(), mirror.scale());
    ASSERT_EQ(loaded->size(), mirror.size());
    for (size_t i = 0; i < mirror.size(); ++i) {
      EXPECT_EQ(loaded->exact_only(i), mirror.exact_only(i)) << "row " << i;
      for (size_t d = 0; d < mirror.dim(); ++d) {
        ASSERT_EQ(loaded->row(i)[d], mirror.row(i)[d]);
      }
    }
  }
  {
    // Dimension mismatch is a clean error, not a misparse.
    util::ByteReader reader(writer.bytes());
    EXPECT_FALSE(data::QuantizedMirror::Load(&reader, 13, 1000).ok());
  }
  {
    // Truncation is a clean error.
    const std::vector<uint8_t>& bytes = writer.bytes();
    util::ByteReader reader(
        std::span<const uint8_t>(bytes.data(), bytes.size() / 2));
    EXPECT_FALSE(data::QuantizedMirror::Load(&reader, 12, 1000).ok());
  }
}

// --- VerifyBlockQuantized vs VerifyBlock: the exactness property. ------------

class QuantizedVerifyTest : public ::testing::Test {
 protected:
  /// Compares the two verifiers over `ids` for one (metric, radius) and
  /// requires the appended outputs to be IDENTICAL VECTORS.
  static void ExpectIdentical(const data::DenseDataset& dataset,
                              const data::QuantizedMirror& mirror,
                              data::Metric metric, const float* query,
                              std::span<const uint32_t> ids, double radius,
                              core::kernels::QuantizedScreenStats* stats) {
    std::vector<uint32_t> exact, screened;
    core::kernels::VerifyBlock(dataset, metric, query, ids, radius, &exact);
    const size_t reported = core::kernels::VerifyBlockQuantized(
        dataset, mirror, metric, query, ids, radius, &screened, stats);
    ASSERT_EQ(screened, exact) << "metric " << static_cast<int>(metric)
                               << " radius " << radius;
    EXPECT_EQ(reported, screened.size());
  }
};

TEST_F(QuantizedVerifyTest, MatchesVerifyBlockOverMetricsRadiiAndSeeds) {
  std::mt19937 rng(3);
  core::kernels::QuantizedScreenStats stats;
  for (uint64_t seed : {21u, 22u, 23u}) {
    for (size_t dim : {size_t{8}, size_t{16}, size_t{33}}) {
      data::DenseDataset dataset = data::MakeCorelLike(600, dim, seed);
      dataset.PrecomputeNorms();
      const auto mirror = data::QuantizedMirror::Build(dataset);
      ASSERT_TRUE(mirror.enabled());
      const data::DenseSplit split = data::SplitQueries(dataset, 8, seed + 1);

      std::vector<uint32_t> all_ids(split.base.size());
      for (size_t i = 0; i < all_ids.size(); ++i) {
        all_ids[i] = static_cast<uint32_t>(i);
      }
      std::vector<uint32_t> shuffled = all_ids;
      std::shuffle(shuffled.begin(), shuffled.end(), rng);

      // The mirror indexes the split base (same prefix ids as `dataset`).
      data::DenseDataset base = split.base;
      base.PrecomputeNorms();
      const auto base_mirror = data::QuantizedMirror::Build(base);
      for (size_t q = 0; q < split.queries.size(); ++q) {
        const float* query = split.queries.point(q);
        for (const double radius : {0.0, 0.05, 0.2, 0.4, 0.8, 1.6, 3.0}) {
          ExpectIdentical(base, base_mirror, data::Metric::kL2, query,
                          all_ids, radius, &stats);
          ExpectIdentical(base, base_mirror, data::Metric::kL2, query,
                          shuffled, radius, &stats);
          ExpectIdentical(base, base_mirror, data::Metric::kL1, query,
                          all_ids, radius * dim / 4.0, &stats);
          ExpectIdentical(base, base_mirror, data::Metric::kCosine, query,
                          shuffled, radius / 4.0, &stats);
        }
      }
    }
  }
  // The screen must actually classify on realistic inputs — a screen that
  // marks everything borderline is "exact" but useless.
  EXPECT_GT(stats.definite_out, 0u);
  EXPECT_GT(stats.definite_in, 0u);
  EXPECT_LT(stats.borderline, stats.screened / 4);
}

TEST_F(QuantizedVerifyTest, MatchesVerifyBlockOnEveryTier) {
  TierGuard guard;
  data::DenseDataset dataset = data::MakeCorelLike(400, 16, 31);
  const data::DenseSplit split = data::SplitQueries(dataset, 5, 32);
  data::DenseDataset base = split.base;
  base.PrecomputeNorms();
  const auto base_mirror = data::QuantizedMirror::Build(base);
  std::vector<uint32_t> ids(base.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<uint32_t>(i);

  core::kernels::QuantizedScreenStats stats;
  for (Tier tier : util::simd::SupportedTiers()) {
    util::simd::SetResolvedTierForTest(tier);
    for (size_t q = 0; q < split.queries.size(); ++q) {
      for (const double radius : {0.1, 0.4, 1.0}) {
        ExpectIdentical(base, base_mirror, data::Metric::kL2,
                        split.queries.point(q), ids, radius, &stats);
        ExpectIdentical(base, base_mirror, data::Metric::kCosine,
                        split.queries.point(q), ids, radius / 5.0, &stats);
      }
    }
  }
}

TEST_F(QuantizedVerifyTest, DegenerateInputsStillMatchExactly) {
  data::DenseDataset dataset = data::MakeCorelLike(200, 8, 41);
  dataset.PrecomputeNorms();
  const auto mirror = data::QuantizedMirror::Build(dataset);
  std::vector<uint32_t> ids(dataset.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<uint32_t>(i);
  core::kernels::QuantizedScreenStats stats;

  // NaN query: every float comparison is false, so both paths report
  // nothing — the screen must not "definitely include" anything.
  std::vector<float> nan_query(8, std::numeric_limits<float>::quiet_NaN());
  ExpectIdentical(dataset, mirror, data::Metric::kL2, nan_query.data(), ids,
                  0.5, &stats);

  const float* query = dataset.point(0);
  // Negative radius reports nothing anywhere (cosine's clamped floor is 0).
  ExpectIdentical(dataset, mirror, data::Metric::kL2, query, ids, -1.0,
                  &stats);
  ExpectIdentical(dataset, mirror, data::Metric::kCosine, query, ids, -0.5,
                  &stats);
  // Cosine at radius >= 2: the float distance is clamped into [0, 2], so
  // everything matches; the screen must defer rather than reject.
  ExpectIdentical(dataset, mirror, data::Metric::kCosine, query, ids, 2.0,
                  &stats);
  ExpectIdentical(dataset, mirror, data::Metric::kCosine, query, ids, 5.0,
                  &stats);
  // Ids beyond the mirror (a racing reader's view) rescore exactly.
  auto short_mirror = data::QuantizedMirror::Build(dataset);
  data::DenseDataset longer = dataset;
  std::vector<float> extra(8, 0.25f);
  longer.Append(extra);
  std::vector<uint32_t> with_new = ids;
  with_new.push_back(static_cast<uint32_t>(longer.size() - 1));
  ExpectIdentical(longer, short_mirror, data::Metric::kL2, query, with_new,
                  0.5, &stats);
}

// --- Engine integration. -----------------------------------------------------

using L2Engine = engine::ShardedEngine<lsh::PStableFamily>;

constexpr size_t kDim = 16;
constexpr double kRadius = 0.4;

L2Engine::Options EngineOptionsFor(bool quantized,
                                   core::ForcedStrategy forced =
                                       core::ForcedStrategy::kAuto) {
  L2Engine::Options options;
  options.num_shards = 3;
  options.index.num_tables = 20;
  options.index.k = 7;
  options.index.seed = 51;
  options.active_seal_threshold = 64;
  options.searcher.cost_model = core::CostModel::FromRatio(6.0);
  options.searcher.forced = forced;
  options.quantized_verify = quantized;
  return options;
}

/// Identical churn on an engine: inserts (including one row far outside
/// the calibrated range, exercising the exact_only path) and removes.
void Churn(L2Engine* engine, const data::DenseDataset& extra) {
  std::vector<float> staging(kDim);
  for (size_t i = 0; i < extra.size(); ++i) {
    staging.assign(extra.point(i), extra.point(i) + kDim);
    HLSH_CHECK(engine->Insert(staging.data()).ok());
  }
  std::vector<float> huge(kDim, 500.0f);
  HLSH_CHECK(engine->Insert(huge.data()).ok());
  for (uint32_t id = 0; id < 300; id += 11) {
    HLSH_CHECK(engine->Remove(id).ok());
  }
}

TEST(QuantizedEngineTest, QuantizedOnAndOffServeBitIdenticalResults) {
  const data::DenseDataset full = data::MakeCorelLike(2500, kDim, 61);
  const data::DenseSplit split = data::SplitQueries(full, 20, 62);
  const data::DenseDataset extra = data::MakeCorelLike(500, kDim, 63);

  for (const auto forced :
       {core::ForcedStrategy::kAuto, core::ForcedStrategy::kAlwaysLsh,
        core::ForcedStrategy::kAlwaysLinear}) {
    data::DenseDataset dataset_on = split.base;
    data::DenseDataset dataset_off = split.base;
    auto on = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                              &dataset_on, EngineOptionsFor(true, forced));
    auto off = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                               &dataset_off, EngineOptionsFor(false, forced));
    ASSERT_TRUE(on.ok() && off.ok());
    EXPECT_TRUE(on->stats().quantized_verify);
    EXPECT_FALSE(off->stats().quantized_verify);

    Churn(&*on, extra);
    Churn(&*off, extra);
    on->DrainMaintenance();
    off->DrainMaintenance();

    std::vector<uint32_t> out_on, out_off;
    engine::ShardedQueryStats stats_on, stats_off;
    for (size_t q = 0; q < split.queries.size(); ++q) {
      out_on.clear();
      out_off.clear();
      on->Query(split.queries.point(q), kRadius, &out_on, &stats_on);
      off->Query(split.queries.point(q), kRadius, &out_off, &stats_off);
      ASSERT_EQ(out_on, out_off)
          << "forced " << static_cast<int>(forced) << " query " << q;
      EXPECT_EQ(stats_on.lsh_shards, stats_off.lsh_shards);
      EXPECT_EQ(stats_on.linear_shards, stats_off.linear_shards);
    }
    // The exact_only insert is found by its own exact self-query.
    std::vector<float> huge(kDim, 500.0f);
    out_on.clear();
    on->Query(huge.data(), 0.001, &out_on);
    ASSERT_EQ(out_on.size(), 1u);
  }
}

TEST(QuantizedEngineTest, ConcurrentReadersStayExactDuringChurn) {
  const data::DenseDataset full = data::MakeCorelLike(2000, kDim, 71);
  const data::DenseSplit split = data::SplitQueries(full, 8, 72);
  const data::DenseDataset extra = data::MakeCorelLike(600, kDim, 73);
  data::DenseDataset dataset = split.base;
  auto engine = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                                &dataset, EngineOptionsFor(true));
  ASSERT_TRUE(engine.ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> queries_run{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      auto scratch = engine->MakeQueryScratch();
      std::vector<uint32_t> out;
      size_t q = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        out.clear();
        engine->QueryConcurrent(split.queries.point(q % split.queries.size()),
                                kRadius, &out, &scratch);
        // Results must be well-formed mid-churn: unique ids within bounds.
        std::sort(out.begin(), out.end());
        EXPECT_TRUE(std::adjacent_find(out.begin(), out.end()) == out.end());
        if (!out.empty()) {
          EXPECT_LT(out.back(), dataset.size());
        }
        ++q;
        queries_run.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  Churn(&*engine, extra);
  while (queries_run.load(std::memory_order_relaxed) < 300) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : readers) thread.join();
  engine->DrainMaintenance();

  // Quiesced: the churned quantized engine must agree bit-for-bit with a
  // quantized-off engine brought to the same state.
  data::DenseDataset dataset_off = split.base;
  auto off = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                             &dataset_off, EngineOptionsFor(false));
  ASSERT_TRUE(off.ok());
  Churn(&*off, extra);
  off->DrainMaintenance();
  std::vector<uint32_t> out_on, out_off;
  for (size_t q = 0; q < split.queries.size(); ++q) {
    out_on.clear();
    out_off.clear();
    engine->Query(split.queries.point(q), kRadius, &out_on);
    off->Query(split.queries.point(q), kRadius, &out_off);
    ASSERT_EQ(out_on, out_off) << "query " << q;
  }
}

TEST(QuantizedEngineTest, MemoryAccountingShowsTheMirrorSaving) {
  const data::DenseDataset full = data::MakeCorelLike(3000, 32, 81);
  data::DenseDataset dataset = full;
  auto on = L2Engine::Build(lsh::PStableFamily::L2(32, 2 * kRadius), &dataset,
                            EngineOptionsFor(true));
  ASSERT_TRUE(on.ok());
  const engine::EngineStats stats = on->stats();
  EXPECT_TRUE(stats.quantized_verify);
  EXPECT_GT(stats.mirror_bytes, 0u);
  EXPECT_GT(stats.dataset_bytes, 0u);
  EXPECT_EQ(stats.index_bytes, stats.memory_bytes);
  // The mirror holds 1 byte per element plus 1 flag per row against the
  // dataset's 4-byte floats (+ norm cache): expect roughly a 4x saving.
  EXPECT_GE(stats.dataset_bytes, 3 * stats.mirror_bytes);
  EXPECT_LE(stats.dataset_bytes, 6 * stats.mirror_bytes);

  data::DenseDataset dataset_off = full;
  auto off = L2Engine::Build(lsh::PStableFamily::L2(32, 2 * kRadius),
                             &dataset_off, EngineOptionsFor(false));
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->stats().quantized_verify);
  EXPECT_EQ(off->stats().mirror_bytes, 0u);
}

TEST(QuantizedEngineTest, NonDenseContainersIgnoreTheOptionGracefully) {
  engine::EngineOptions options;
  options.num_shards = 2;
  options.num_tables = 8;
  options.k = 6;
  options.seed = 7;
  options.quantized_verify = true;
  {
    data::BinaryDataset codes = data::MakeRandomCodes(300, 64, 91);
    auto built =
        engine::BuildMutableEngine(data::Metric::kHamming, &codes, options);
    ASSERT_TRUE(built.ok());
    EXPECT_FALSE((*built)->stats().quantized_verify);
    EXPECT_EQ((*built)->stats().mirror_bytes, 0u);
    std::vector<uint32_t> out;
    ASSERT_TRUE((*built)->Query(codes.point(5), 10.0, &out).ok());
    EXPECT_TRUE(std::find(out.begin(), out.end(), 5u) != out.end());
  }
  {
    data::SparseDataset sparse = data::MakeRandomSparse(300, 4000, 25, 92);
    options.k = 4;
    auto built =
        engine::BuildMutableEngine(data::Metric::kJaccard, &sparse, options);
    ASSERT_TRUE(built.ok());
    EXPECT_FALSE((*built)->stats().quantized_verify);
    std::vector<uint32_t> out;
    ASSERT_TRUE((*built)->Query(sparse.point(7), 0.7, &out).ok());
    EXPECT_TRUE(std::find(out.begin(), out.end(), 7u) != out.end());
  }
}

// --- Snapshot format v2 + the golden v1 fixture. -----------------------------

class QuantizedSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("hybridlsh_qsnap_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }
  std::string Dir(const std::string& name) const {
    return (root_ / name).string();
  }
  fs::path root_;
};

TEST_F(QuantizedSnapshotTest, V2RoundTripCarriesTheMirrorSidecar) {
  const data::DenseDataset full = data::MakeCorelLike(1200, kDim, 101);
  const data::DenseSplit split = data::SplitQueries(full, 15, 102);
  data::DenseDataset dataset = split.base;
  auto live = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                              &dataset, EngineOptionsFor(true));
  ASSERT_TRUE(live.ok());
  Churn(&*live, data::MakeCorelLike(200, kDim, 103));
  ASSERT_TRUE(live->SaveSnapshot(Dir("snap")).ok());

  // The epoch directory holds the sidecar.
  bool found_mirror = false;
  for (const auto& epoch : fs::directory_iterator(Dir("snap"))) {
    if (!epoch.is_directory()) continue;
    found_mirror = fs::exists(epoch.path() / engine::snapshot::kMirrorFile);
  }
  EXPECT_TRUE(found_mirror);

  data::DenseDataset restored_dataset;
  auto restored = L2Engine::OpenSnapshot(Dir("snap"), &restored_dataset);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->stats().quantized_verify);
  EXPECT_EQ(restored->stats().mirror_bytes, live->stats().mirror_bytes);
  EXPECT_TRUE(restored->options().quantized_verify);

  std::vector<uint32_t> out_a, out_b;
  for (size_t q = 0; q < split.queries.size(); ++q) {
    out_a.clear();
    out_b.clear();
    live->Query(split.queries.point(q), kRadius, &out_a);
    restored->Query(split.queries.point(q), kRadius, &out_b);
    ASSERT_EQ(out_a, out_b) << "query " << q;
  }
}

TEST_F(QuantizedSnapshotTest, QuantizedOffRoundTripsWithoutASidecar) {
  const data::DenseDataset full = data::MakeCorelLike(600, kDim, 111);
  data::DenseDataset dataset = full;
  auto live = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                              &dataset, EngineOptionsFor(false));
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live->SaveSnapshot(Dir("snap")).ok());
  for (const auto& epoch : fs::directory_iterator(Dir("snap"))) {
    if (!epoch.is_directory()) continue;
    EXPECT_FALSE(fs::exists(epoch.path() / engine::snapshot::kMirrorFile));
  }
  data::DenseDataset restored_dataset;
  auto restored = L2Engine::OpenSnapshot(Dir("snap"), &restored_dataset);
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->stats().quantized_verify);
  EXPECT_FALSE(restored->options().quantized_verify);
}

TEST_F(QuantizedSnapshotTest, CostModelSplitRoundTripsThroughTheConfig) {
  const data::DenseDataset full = data::MakeCorelLike(400, kDim, 121);
  data::DenseDataset dataset = full;
  auto options = EngineOptionsFor(true);
  options.searcher.cost_model.beta_screen = 1.5;
  options.searcher.cost_model.rescore_fraction = 0.125;
  auto live = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                              &dataset, options);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live->SaveSnapshot(Dir("snap")).ok());
  data::DenseDataset restored_dataset;
  auto restored = L2Engine::OpenSnapshot(Dir("snap"), &restored_dataset);
  ASSERT_TRUE(restored.ok());
  const core::CostModel& model = restored->options().searcher.cost_model;
  EXPECT_DOUBLE_EQ(model.beta_screen, 1.5);
  EXPECT_DOUBLE_EQ(model.rescore_fraction, 0.125);
  EXPECT_DOUBLE_EQ(model.VerifyBeta(), 1.5 + 0.125 * model.beta);
}

TEST(GoldenSnapshotTest, V1FixtureOpensAndRebuildsTheMirror) {
  // A committed format-v1 snapshot (written before the v2 fields and the
  // mirror sidecar existed) must open cleanly: the config's quantized
  // fields take their defaults and the mirror is requantized from the
  // restored dataset. The fixture recipe is reproduced live below; the
  // restored engine must serve identically to the regenerated one.
  const std::string dir =
      std::string(HLSH_TESTDATA_DIR) + "/golden_v1_snapshot";
  auto restored = engine::OpenSnapshotEngine(dir);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->metric(), data::Metric::kL2);
  EXPECT_TRUE((*restored)->stats().quantized_verify);
  EXPECT_GT((*restored)->stats().mirror_bytes, 0u);

  // Regenerate the fixture's engine state (see build-time generator note
  // in CHANGES.md): same data, same churn, same seeds.
  data::DenseDataset dataset = data::MakeCorelLike(200, 16, 77);
  engine::EngineOptions options;
  options.num_shards = 2;
  options.num_tables = 10;
  options.k = 6;
  options.seed = 78;
  options.radius = 0.45;
  options.searcher.cost_model = core::CostModel::FromRatio(6.0);
  auto live = engine::BuildMutableEngine(data::Metric::kL2, &dataset, options);
  ASSERT_TRUE(live.ok());
  for (uint32_t id = 0; id < 40; id += 7) {
    ASSERT_TRUE((*live)->Remove(id).ok());
  }
  std::vector<float> point(16, 0.0f);
  for (int i = 0; i < 8; ++i) {
    for (int d = 0; d < 16; ++d) {
      point[d] = 0.01f * static_cast<float>(i + 1) * static_cast<float>(d + 1);
    }
    ASSERT_TRUE((*live)->Insert(point.data()).ok());
  }
  ASSERT_EQ((*restored)->size(), (*live)->size());

  const data::DenseDataset queries = data::MakeCorelLike(30, 16, 79);
  std::vector<uint32_t> out_a, out_b;
  for (size_t q = 0; q < queries.size(); ++q) {
    out_a.clear();
    out_b.clear();
    ASSERT_TRUE((*live)->Query(queries.point(q), 0.45, &out_a).ok());
    ASSERT_TRUE((*restored)->Query(queries.point(q), 0.45, &out_b).ok());
    ASSERT_EQ(out_a, out_b) << "query " << q;
  }
}

}  // namespace
}  // namespace hybridlsh
