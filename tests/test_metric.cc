// Unit tests for data/metric.h.

#include "data/metric.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace data {
namespace {

TEST(MetricNameTest, AllNamed) {
  EXPECT_EQ(MetricName(Metric::kL1), "L1");
  EXPECT_EQ(MetricName(Metric::kL2), "L2");
  EXPECT_EQ(MetricName(Metric::kCosine), "cosine");
  EXPECT_EQ(MetricName(Metric::kHamming), "hamming");
  EXPECT_EQ(MetricName(Metric::kJaccard), "jaccard");
}

TEST(DotProductTest, KnownValues) {
  const float a[] = {1, 2, 3};
  const float b[] = {4, -5, 6};
  EXPECT_FLOAT_EQ(DotProduct(a, b, 3), 4 - 10 + 18);
}

TEST(NormTest, PythagoreanTriple) {
  const float a[] = {3, 4};
  EXPECT_FLOAT_EQ(Norm(a, 2), 5.0f);
}

TEST(L2DistanceTest, KnownValues) {
  const float a[] = {0, 0};
  const float b[] = {3, 4};
  EXPECT_FLOAT_EQ(L2Distance(a, b, 2), 5.0f);
  EXPECT_FLOAT_EQ(SquaredL2Distance(a, b, 2), 25.0f);
}

TEST(L2DistanceTest, IdenticalPointsAreZero) {
  const float a[] = {1.5f, -2.5f, 3.5f};
  EXPECT_FLOAT_EQ(L2Distance(a, a, 3), 0.0f);
}

TEST(L2DistanceTest, Symmetry) {
  const float a[] = {1, 2, 3, 4};
  const float b[] = {-4, 3, 0, 1};
  EXPECT_FLOAT_EQ(L2Distance(a, b, 4), L2Distance(b, a, 4));
}

TEST(L1DistanceTest, KnownValues) {
  const float a[] = {1, -2, 3};
  const float b[] = {4, 2, 1};
  EXPECT_FLOAT_EQ(L1Distance(a, b, 3), 3 + 4 + 2);
}

TEST(L1DistanceTest, DominatesL2) {
  const float a[] = {0.3f, -1.7f, 2.2f, 0.0f};
  const float b[] = {1.1f, 0.4f, -0.6f, 2.0f};
  EXPECT_GE(L1Distance(a, b, 4), L2Distance(a, b, 4));
}

TEST(CosineDistanceTest, ParallelVectorsAreZero) {
  const float a[] = {1, 2, 3};
  const float b[] = {2, 4, 6};
  EXPECT_NEAR(CosineDistance(a, b, 3), 0.0f, 1e-6f);
}

TEST(CosineDistanceTest, OrthogonalVectorsAreOne) {
  const float a[] = {1, 0};
  const float b[] = {0, 5};
  EXPECT_FLOAT_EQ(CosineDistance(a, b, 2), 1.0f);
}

TEST(CosineDistanceTest, OppositeVectorsAreTwo) {
  const float a[] = {1, 1};
  const float b[] = {-2, -2};
  EXPECT_NEAR(CosineDistance(a, b, 2), 2.0f, 1e-6f);
}

TEST(CosineDistanceTest, ZeroVectorIsDistanceOne) {
  const float a[] = {0, 0};
  const float b[] = {1, 2};
  EXPECT_FLOAT_EQ(CosineDistance(a, b, 2), 1.0f);
  EXPECT_FLOAT_EQ(CosineDistance(b, a, 2), 1.0f);
  EXPECT_FLOAT_EQ(CosineDistance(a, a, 2), 1.0f);
}

TEST(CosineDistanceTest, ScaleInvariant) {
  const float a[] = {0.5f, 1.25f, -0.75f};
  const float b[] = {2.0f, -1.0f, 0.5f};
  float a10[3], b10[3];
  for (int i = 0; i < 3; ++i) {
    a10[i] = 10 * a[i];
    b10[i] = 0.1f * b[i];
  }
  EXPECT_NEAR(CosineDistance(a, b, 3), CosineDistance(a10, b10, 3), 1e-6f);
}

TEST(HammingDistanceTest, IdenticalCodesAreZero) {
  const uint64_t a[] = {0xdeadbeefcafebabeULL, 0x0123456789abcdefULL};
  EXPECT_EQ(HammingDistance(a, a, 2), 0u);
}

TEST(HammingDistanceTest, CountsBitDifferences) {
  const uint64_t a[] = {0b1010, 0};
  const uint64_t b[] = {0b0110, 1};
  EXPECT_EQ(HammingDistance(a, b, 2), 3u);  // bits 2,3 in word 0; bit 0 in word 1
}

TEST(HammingDistanceTest, AllBitsDiffer) {
  const uint64_t a[] = {0};
  const uint64_t b[] = {~uint64_t{0}};
  EXPECT_EQ(HammingDistance(a, b, 1), 64u);
}

TEST(JaccardDistanceTest, IdenticalSetsAreZero) {
  const std::vector<uint32_t> a{1, 5, 9};
  EXPECT_FLOAT_EQ(JaccardDistance(a, a), 0.0f);
}

TEST(JaccardDistanceTest, DisjointSetsAreOne) {
  const std::vector<uint32_t> a{1, 2};
  const std::vector<uint32_t> b{3, 4};
  EXPECT_FLOAT_EQ(JaccardDistance(a, b), 1.0f);
}

TEST(JaccardDistanceTest, PartialOverlap) {
  const std::vector<uint32_t> a{1, 2, 3};
  const std::vector<uint32_t> b{2, 3, 4, 5};
  // intersection 2, union 5 -> distance 0.6.
  EXPECT_FLOAT_EQ(JaccardDistance(a, b), 0.6f);
}

TEST(JaccardDistanceTest, EmptySets) {
  const std::vector<uint32_t> empty;
  const std::vector<uint32_t> a{1};
  EXPECT_FLOAT_EQ(JaccardDistance(empty, empty), 0.0f);
  EXPECT_FLOAT_EQ(JaccardDistance(empty, a), 1.0f);
  EXPECT_FLOAT_EQ(JaccardDistance(a, empty), 1.0f);
}

TEST(MetricPropertyTest, TriangleInequalityL2) {
  // Spot-check the triangle inequality on pseudo-random triples.
  const float pts[3][4] = {{0.1f, 2.0f, -1.0f, 0.5f},
                           {1.3f, -0.7f, 0.2f, 2.2f},
                           {-0.4f, 1.1f, 1.9f, -1.5f}};
  const float ab = L2Distance(pts[0], pts[1], 4);
  const float bc = L2Distance(pts[1], pts[2], 4);
  const float ac = L2Distance(pts[0], pts[2], 4);
  EXPECT_LE(ac, ab + bc + 1e-5f);
}

}  // namespace
}  // namespace data
}  // namespace hybridlsh
