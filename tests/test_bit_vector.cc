// Unit tests for util/bit_vector.h: BitVector and VisitedSet.

#include "util/bit_vector.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace util {
namespace {

TEST(BitVectorTest, StartsAllZero) {
  BitVector bits(130);
  EXPECT_EQ(bits.size(), 130u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.Get(i));
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitVectorTest, SetAndGet) {
  BitVector bits(130);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Get(0));
  EXPECT_TRUE(bits.Get(63));
  EXPECT_TRUE(bits.Get(64));
  EXPECT_TRUE(bits.Get(129));
  EXPECT_FALSE(bits.Get(1));
  EXPECT_FALSE(bits.Get(65));
  EXPECT_EQ(bits.Count(), 4u);
}

TEST(BitVectorTest, ClearSingleBit) {
  BitVector bits(64);
  bits.Set(10);
  bits.Set(11);
  bits.Clear(10);
  EXPECT_FALSE(bits.Get(10));
  EXPECT_TRUE(bits.Get(11));
}

TEST(BitVectorTest, TestAndSetReportsPriorValue) {
  BitVector bits(10);
  EXPECT_FALSE(bits.TestAndSet(3));
  EXPECT_TRUE(bits.TestAndSet(3));
  EXPECT_TRUE(bits.Get(3));
}

TEST(BitVectorTest, ClearAll) {
  BitVector bits(200);
  for (size_t i = 0; i < 200; i += 3) bits.Set(i);
  bits.ClearAll();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitVectorTest, ResizeZeroesEverything) {
  BitVector bits(10);
  bits.Set(5);
  bits.Resize(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitVectorTest, CountAcrossWordBoundaries) {
  BitVector bits(192);
  for (size_t i = 0; i < 192; ++i) bits.Set(i);
  EXPECT_EQ(bits.Count(), 192u);
}

TEST(BitVectorTest, EmptyVector) {
  BitVector bits;
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(VisitedSetTest, InsertReturnsTrueOnFirstOccurrence) {
  VisitedSet set(100);
  EXPECT_TRUE(set.Insert(42));
  EXPECT_FALSE(set.Insert(42));
  EXPECT_TRUE(set.Insert(7));
  EXPECT_EQ(set.size(), 2u);
}

TEST(VisitedSetTest, ContainsTracksInserts) {
  VisitedSet set(100);
  EXPECT_FALSE(set.Contains(5));
  set.Insert(5);
  EXPECT_TRUE(set.Contains(5));
}

TEST(VisitedSetTest, TouchedPreservesFirstOccurrenceOrder) {
  VisitedSet set(100);
  set.Insert(9);
  set.Insert(2);
  set.Insert(9);  // duplicate, not re-added
  set.Insert(55);
  EXPECT_EQ(set.touched(), (std::vector<uint32_t>{9, 2, 55}));
}

TEST(VisitedSetTest, ResetClearsOnlyTouchedBits) {
  VisitedSet set(1000);
  for (uint32_t id : {1u, 500u, 999u}) set.Insert(id);
  set.Reset();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(1));
  EXPECT_FALSE(set.Contains(500));
  EXPECT_FALSE(set.Contains(999));
  // Reusable after reset.
  EXPECT_TRUE(set.Insert(500));
}

TEST(VisitedSetTest, ManyQueriesReuseWithoutLeakage) {
  VisitedSet set(256);
  for (int query = 0; query < 50; ++query) {
    for (uint32_t id = 0; id < 256; id += 7) {
      EXPECT_TRUE(set.Insert(id)) << "query " << query << " id " << id;
    }
    set.Reset();
  }
}

TEST(VisitedSetTest, CapacityMatchesConstruction) {
  VisitedSet set(123);
  EXPECT_EQ(set.capacity(), 123u);
}

TEST(VisitedSetTest, ResizeClears) {
  VisitedSet set(10);
  set.Insert(3);
  set.Resize(20);
  EXPECT_EQ(set.capacity(), 20u);
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(set.size(), 0u);
}

TEST(VisitedSetTest, BoundaryIds) {
  VisitedSet set(64);
  EXPECT_TRUE(set.Insert(0));
  EXPECT_TRUE(set.Insert(63));
  EXPECT_FALSE(set.Insert(0));
  EXPECT_FALSE(set.Insert(63));
}

// --- Word-level bulk operations (the filter stage's primitives). -----------

TEST(BitVectorBulkTest, AndWithIntersects) {
  BitVector a(200), b(200);
  for (size_t i = 0; i < 200; i += 2) a.Set(i);
  for (size_t i = 0; i < 200; i += 3) b.Set(i);
  a.AndWith(b);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Get(i), i % 6 == 0) << "bit " << i;
  }
}

TEST(BitVectorBulkTest, AndWithShorterOtherClearsTail) {
  // Bits at or past the other's size have no counterpart: AND with an
  // absent bit is 0.
  BitVector a(200), b(70);
  a.Set(5);
  a.Set(69);
  a.Set(70);   // past b: must clear
  a.Set(199);  // past b: must clear
  b.Set(5);
  b.Set(69);
  a.AndWith(b);
  EXPECT_TRUE(a.Get(5));
  EXPECT_TRUE(a.Get(69));
  EXPECT_FALSE(a.Get(70));
  EXPECT_FALSE(a.Get(199));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(BitVectorBulkTest, OrWithUnionAndTailMasking) {
  BitVector a(100), b(130);
  a.Set(1);
  b.Set(2);
  b.Set(99);
  b.Set(120);  // beyond a's size: must NOT leak into a
  a.OrWith(b);
  EXPECT_TRUE(a.Get(1));
  EXPECT_TRUE(a.Get(2));
  EXPECT_TRUE(a.Get(99));
  EXPECT_EQ(a.Count(), 3u);
  // The tail word of `a` is shared with bits 100..127 of `b`; OrWith must
  // re-mask so Count and iteration never see phantom bits.
  size_t visited = 0;
  a.ForEachSetBitInRange(0, a.size(), [&](size_t) { ++visited; });
  EXPECT_EQ(visited, 3u);
}

TEST(BitVectorBulkTest, AndWithNotSubtracts) {
  BitVector a(128), dead(128);
  for (size_t i = 0; i < 128; ++i) a.Set(i);
  dead.Set(0);
  dead.Set(64);
  dead.Set(127);
  a.AndWithNot(dead);
  EXPECT_FALSE(a.Get(0));
  EXPECT_FALSE(a.Get(64));
  EXPECT_FALSE(a.Get(127));
  EXPECT_EQ(a.Count(), 125u);
}

TEST(BitVectorBulkTest, AndWithNotShorterOtherLeavesTail) {
  // A tombstone map that hasn't grown to cover an id cannot have marked
  // it dead: bits past other.size() stay set.
  BitVector a(200), dead(70);
  a.Set(10);
  a.Set(100);
  dead.Set(10);
  a.AndWithNot(dead);
  EXPECT_FALSE(a.Get(10));
  EXPECT_TRUE(a.Get(100));
}

TEST(BitVectorBulkTest, CountAndMatchesManualIntersection) {
  BitVector a(300), b(300);
  for (size_t i = 0; i < 300; i += 5) a.Set(i);
  for (size_t i = 0; i < 300; i += 7) b.Set(i);
  size_t expected = 0;
  for (size_t i = 0; i < 300; ++i) expected += a.Get(i) && b.Get(i);
  EXPECT_EQ(a.CountAnd(b), expected);
  EXPECT_EQ(b.CountAnd(a), expected);
}

TEST(BitVectorBulkTest, CountAndDifferentSizes) {
  BitVector a(64), b(1000);
  a.Set(63);
  b.Set(63);
  b.Set(999);
  EXPECT_EQ(a.CountAnd(b), 1u);
  EXPECT_EQ(b.CountAnd(a), 1u);
}

TEST(BitVectorBulkTest, ForEachSetBitInRangeBoundaries) {
  BitVector bits(256);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(128);
  bits.Set(255);
  std::vector<size_t> seen;
  bits.ForEachSetBitInRange(63, 129, [&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{63, 64, 128}));
  seen.clear();
  bits.ForEachSetBitInRange(0, 256, [&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{0, 63, 64, 128, 255}));
  seen.clear();
  bits.ForEachSetBitInRange(100, 1000, [&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{128, 255}));  // end clamps to size
  seen.clear();
  bits.ForEachSetBitInRange(50, 50, [&](size_t i) { seen.push_back(i); });
  EXPECT_TRUE(seen.empty());
}

TEST(BitVectorBulkTest, BulkOpsSafeWithConcurrentReaders) {
  // AndWith/AndWithNot load the OTHER vector with acquire semantics while
  // a writer marks bits via SetConcurrent — the composition the engine
  // performs against the live tombstone bitmap. The result must be a
  // subset of the predicate bits with no torn words; whether a racing
  // tombstone is observed is timing, not correctness.
  constexpr size_t kBits = 1 << 14;
  BitVector tombstones(kBits);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    size_t i = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      tombstones.SetConcurrent((i * 2654435761u) % kBits);
      i += 1;
    }
  });
  for (int round = 0; round < 200; ++round) {
    BitVector filter(kBits);
    for (size_t i = 0; i < kBits; i += 3) filter.Set(i);
    const size_t before = filter.Count();
    filter.AndWithNot(tombstones);
    // Never gains bits, never drops non-tombstoned ones spuriously: every
    // cleared bit must be dead by now (tombstones only ever get set).
    EXPECT_LE(filter.Count(), before);
    filter.ForEachSetBitInRange(0, kBits, [&](size_t i) {
      EXPECT_EQ(i % 3, 0u);
    });
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace util
}  // namespace hybridlsh
