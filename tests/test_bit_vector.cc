// Unit tests for util/bit_vector.h: BitVector and VisitedSet.

#include "util/bit_vector.h"

#include <vector>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace util {
namespace {

TEST(BitVectorTest, StartsAllZero) {
  BitVector bits(130);
  EXPECT_EQ(bits.size(), 130u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.Get(i));
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitVectorTest, SetAndGet) {
  BitVector bits(130);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Get(0));
  EXPECT_TRUE(bits.Get(63));
  EXPECT_TRUE(bits.Get(64));
  EXPECT_TRUE(bits.Get(129));
  EXPECT_FALSE(bits.Get(1));
  EXPECT_FALSE(bits.Get(65));
  EXPECT_EQ(bits.Count(), 4u);
}

TEST(BitVectorTest, ClearSingleBit) {
  BitVector bits(64);
  bits.Set(10);
  bits.Set(11);
  bits.Clear(10);
  EXPECT_FALSE(bits.Get(10));
  EXPECT_TRUE(bits.Get(11));
}

TEST(BitVectorTest, TestAndSetReportsPriorValue) {
  BitVector bits(10);
  EXPECT_FALSE(bits.TestAndSet(3));
  EXPECT_TRUE(bits.TestAndSet(3));
  EXPECT_TRUE(bits.Get(3));
}

TEST(BitVectorTest, ClearAll) {
  BitVector bits(200);
  for (size_t i = 0; i < 200; i += 3) bits.Set(i);
  bits.ClearAll();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitVectorTest, ResizeZeroesEverything) {
  BitVector bits(10);
  bits.Set(5);
  bits.Resize(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitVectorTest, CountAcrossWordBoundaries) {
  BitVector bits(192);
  for (size_t i = 0; i < 192; ++i) bits.Set(i);
  EXPECT_EQ(bits.Count(), 192u);
}

TEST(BitVectorTest, EmptyVector) {
  BitVector bits;
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(VisitedSetTest, InsertReturnsTrueOnFirstOccurrence) {
  VisitedSet set(100);
  EXPECT_TRUE(set.Insert(42));
  EXPECT_FALSE(set.Insert(42));
  EXPECT_TRUE(set.Insert(7));
  EXPECT_EQ(set.size(), 2u);
}

TEST(VisitedSetTest, ContainsTracksInserts) {
  VisitedSet set(100);
  EXPECT_FALSE(set.Contains(5));
  set.Insert(5);
  EXPECT_TRUE(set.Contains(5));
}

TEST(VisitedSetTest, TouchedPreservesFirstOccurrenceOrder) {
  VisitedSet set(100);
  set.Insert(9);
  set.Insert(2);
  set.Insert(9);  // duplicate, not re-added
  set.Insert(55);
  EXPECT_EQ(set.touched(), (std::vector<uint32_t>{9, 2, 55}));
}

TEST(VisitedSetTest, ResetClearsOnlyTouchedBits) {
  VisitedSet set(1000);
  for (uint32_t id : {1u, 500u, 999u}) set.Insert(id);
  set.Reset();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(1));
  EXPECT_FALSE(set.Contains(500));
  EXPECT_FALSE(set.Contains(999));
  // Reusable after reset.
  EXPECT_TRUE(set.Insert(500));
}

TEST(VisitedSetTest, ManyQueriesReuseWithoutLeakage) {
  VisitedSet set(256);
  for (int query = 0; query < 50; ++query) {
    for (uint32_t id = 0; id < 256; id += 7) {
      EXPECT_TRUE(set.Insert(id)) << "query " << query << " id " << id;
    }
    set.Reset();
  }
}

TEST(VisitedSetTest, CapacityMatchesConstruction) {
  VisitedSet set(123);
  EXPECT_EQ(set.capacity(), 123u);
}

TEST(VisitedSetTest, ResizeClears) {
  VisitedSet set(10);
  set.Insert(3);
  set.Resize(20);
  EXPECT_EQ(set.capacity(), 20u);
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(set.size(), 0u);
}

TEST(VisitedSetTest, BoundaryIds) {
  VisitedSet set(64);
  EXPECT_TRUE(set.Insert(0));
  EXPECT_TRUE(set.Insert(63));
  EXPECT_FALSE(set.Insert(0));
  EXPECT_FALSE(set.Insert(63));
}

}  // namespace
}  // namespace util
}  // namespace hybridlsh
