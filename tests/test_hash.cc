// Unit and property tests for util/hash.h.

#include "util/hash.h"

#include <bit>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace util {
namespace {

TEST(Fmix64Test, IsDeterministic) {
  EXPECT_EQ(Fmix64(12345), Fmix64(12345));
}

TEST(Fmix64Test, ZeroMapsToZero) {
  // fmix64 is a bijection fixing 0; HLL callers must therefore not feed raw
  // id 0 without the offset HashU64 applies.
  EXPECT_EQ(Fmix64(0), 0u);
  EXPECT_NE(HashU64(0), 0u);
}

TEST(Fmix64Test, NoCollisionsOnSequentialInputs) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 100000; ++i) seen.insert(Fmix64(i));
  EXPECT_EQ(seen.size(), 100000u);  // bijective, so guaranteed
}

TEST(Fmix64Test, AvalancheOnSingleBitFlips) {
  // Flipping any single input bit should flip roughly half the output bits.
  const uint64_t base = 0x0123456789abcdefULL;
  const uint64_t hashed = Fmix64(base);
  double total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t flipped = Fmix64(base ^ (uint64_t{1} << bit));
    total_flips += std::popcount(hashed ^ flipped);
  }
  const double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashU64Test, SeedsProduceDistinctFunctions) {
  int equal = 0;
  for (uint64_t v = 0; v < 1000; ++v) equal += (HashU64(v, 1) == HashU64(v, 2));
  EXPECT_EQ(equal, 0);
}

TEST(HashU64Test, UniformHighBits) {
  // HLL uses the top bits as the register index; check their uniformity.
  std::vector<int> counts(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++counts[HashU64(i) >> 60];
  for (int c : counts) EXPECT_NEAR(c, n / 16, n / 16 * 0.1);
}

TEST(HashCombineTest, OrderMatters) {
  EXPECT_NE(HashCombine(HashU64(1), 2), HashCombine(HashU64(2), 1));
}

TEST(HashCombineTest, ChainedCombineHasNoEasyCollisions) {
  std::set<uint64_t> seen;
  for (uint64_t a = 0; a < 100; ++a) {
    for (uint64_t b = 0; b < 100; ++b) {
      seen.insert(HashCombine(HashCombine(0, a), b));
    }
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashBytesTest, IsDeterministic) {
  const std::string s = "hybrid lsh";
  EXPECT_EQ(HashBytes(s.data(), s.size()), HashBytes(s.data(), s.size()));
}

TEST(HashBytesTest, EmptyInputIsValid) {
  EXPECT_EQ(HashBytes(nullptr, 0, 1), HashBytes(nullptr, 0, 1));
  EXPECT_NE(HashBytes(nullptr, 0, 1), HashBytes(nullptr, 0, 2));
}

TEST(HashBytesTest, AllTailLengthsDiffer) {
  // Exercise every tail-switch branch (len % 8 = 0..7) and verify content
  // sensitivity at each length.
  std::vector<uint8_t> buf(17, 0xab);
  std::set<uint64_t> seen;
  for (size_t len = 0; len <= buf.size(); ++len) {
    seen.insert(HashBytes(buf.data(), len));
  }
  EXPECT_EQ(seen.size(), buf.size() + 1);
}

TEST(HashBytesTest, SensitiveToEveryByte) {
  std::vector<uint8_t> buf(32, 0);
  const uint64_t base = HashBytes(buf.data(), buf.size());
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = 1;
    EXPECT_NE(HashBytes(buf.data(), buf.size()), base) << "byte " << i;
    buf[i] = 0;
  }
}

TEST(HashBytesTest, SeedChangesOutput) {
  const std::string s = "payload";
  EXPECT_NE(HashBytes(s.data(), s.size(), 1), HashBytes(s.data(), s.size(), 2));
}

TEST(HashBytesTest, MatchesU64PathOnEightBytes) {
  // Sanity: hashing 8 bytes behaves like hashing the little-endian word
  // (same function family, not identical values — just both deterministic
  // and collision-free over a sample).
  std::set<uint64_t> seen;
  for (uint64_t v = 0; v < 10000; ++v) {
    uint8_t bytes[8];
    std::memcpy(bytes, &v, 8);
    seen.insert(HashBytes(bytes, 8));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace util
}  // namespace hybridlsh
