// Unit tests for util/status.h: Status, StatusOr, and the helper macros.

#include "util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::Ok().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("fp").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("oor").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("ae").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::DataLoss("dl").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Unimplemented("ui").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("int").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("missing bucket");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing bucket");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::DataLoss("x"));
}

TEST(StatusCodeNameTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::InvalidArgument("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyPayload) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Passthrough(int x) {
  HLSH_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Passthrough(1).ok());
  EXPECT_EQ(Passthrough(-1).code(), StatusCode::kInvalidArgument);
}

TEST(CheckMacroTest, PassingCheckDoesNothing) {
  HLSH_CHECK(1 + 1 == 2);
  HLSH_DCHECK(true);
  SUCCEED();
}

TEST(CheckMacroDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(HLSH_CHECK(false), "HLSH_CHECK failed");
}

}  // namespace
}  // namespace util
}  // namespace hybridlsh
