// Unit tests for util/timer.h.

#include "util/timer.h"

#include <gtest/gtest.h>

namespace hybridlsh {
namespace util {
namespace {

// Spins the CPU for roughly the requested wall time.
void BusyLoop(double seconds) {
  WallTimer t;
  double sink = 0;
  while (t.ElapsedSeconds() < seconds) {
    sink += 1.0;
    asm volatile("" : "+r"(sink));  // keep the loop from being optimized out
  }
}

TEST(WallTimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer t;
  const double a = t.ElapsedSeconds();
  const double b = t.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(WallTimerTest, MeasuresBusyWork) {
  WallTimer t;
  BusyLoop(0.02);
  EXPECT_GE(t.ElapsedSeconds(), 0.02);
  EXPECT_LT(t.ElapsedSeconds(), 2.0);  // sanity upper bound
}

TEST(WallTimerTest, RestartResets) {
  WallTimer t;
  BusyLoop(0.02);
  t.Restart();
  EXPECT_LT(t.ElapsedSeconds(), 0.02);
}

TEST(CpuTimerTest, AdvancesUnderCpuLoad) {
  CpuTimer t;
  BusyLoop(0.05);
  EXPECT_GT(t.ElapsedSeconds(), 0.01);
}

TEST(CpuTimerTest, RestartResets) {
  CpuTimer t;
  BusyLoop(0.02);
  t.Restart();
  EXPECT_LT(t.ElapsedSeconds(), 0.02);
}

TEST(ScopedWallTimerTest, AccumulatesIntoSink) {
  double sink = 0;
  {
    ScopedWallTimer scoped(&sink);
    BusyLoop(0.01);
  }
  EXPECT_GE(sink, 0.01);
  const double first = sink;
  {
    ScopedWallTimer scoped(&sink);
    BusyLoop(0.01);
  }
  EXPECT_GE(sink, first + 0.01);
}

}  // namespace
}  // namespace util
}  // namespace hybridlsh
