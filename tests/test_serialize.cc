// Tests for util/serialize.h: encode/decode round trips and the bounds
// checking the index loader depends on.

#include "util/serialize.h"

#include <cstdint>
#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace util {
namespace {

TEST(ByteWriterTest, ScalarRoundTrip) {
  ByteWriter writer;
  writer.WriteU8(7);
  writer.WriteU32(123456);
  writer.WriteU64(0xdeadbeefcafebabeULL);
  writer.WriteI32(-42);
  writer.WriteF32(3.25f);
  writer.WriteF64(-2.5);

  ByteReader reader(writer.bytes());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  float f32;
  double f64;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI32(&i32).ok());
  ASSERT_TRUE(reader.ReadF32(&f32).ok());
  ASSERT_TRUE(reader.ReadF64(&f64).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 0xdeadbeefcafebabeULL);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(f32, 3.25f);
  EXPECT_EQ(f64, -2.5);
  EXPECT_TRUE(reader.ExpectEnd().ok());
}

TEST(ByteWriterTest, BlobRoundTrip) {
  ByteWriter writer;
  const std::vector<uint8_t> payload{1, 2, 3, 4, 5};
  writer.WriteBlob(payload);
  ByteReader reader(writer.bytes());
  std::vector<uint8_t> out;
  ASSERT_TRUE(reader.ReadBlob(&out).ok());
  EXPECT_EQ(out, payload);
}

TEST(ByteWriterTest, EmptyBlob) {
  ByteWriter writer;
  writer.WriteBlob({});
  ByteReader reader(writer.bytes());
  std::vector<uint8_t> out{9};
  ASSERT_TRUE(reader.ReadBlob(&out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ByteWriterTest, ArrayRoundTrip) {
  ByteWriter writer;
  const std::vector<uint64_t> values{10, 20, 30};
  writer.WriteArray<uint64_t>(values);
  ByteReader reader(writer.bytes());
  std::vector<uint64_t> out;
  ASSERT_TRUE(reader.ReadArray<uint64_t>(3, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(ByteReaderTest, TruncatedScalarIsDataLoss) {
  ByteWriter writer;
  writer.WriteU8(1);
  ByteReader reader(writer.bytes());
  uint64_t out;
  EXPECT_EQ(reader.ReadU64(&out).code(), StatusCode::kDataLoss);
}

TEST(ByteReaderTest, OversizedBlobLengthIsDataLoss) {
  ByteWriter writer;
  writer.WriteU64(1 << 20);  // claims a megabyte that is not there
  ByteReader reader(writer.bytes());
  std::vector<uint8_t> out;
  EXPECT_EQ(reader.ReadBlob(&out).code(), StatusCode::kDataLoss);
}

TEST(ByteReaderTest, OversizedArrayCountIsDataLoss) {
  ByteWriter writer;
  writer.WriteU32(5);
  ByteReader reader(writer.bytes());
  std::vector<uint64_t> out;
  EXPECT_EQ(reader.ReadArray<uint64_t>(1000, &out).code(),
            StatusCode::kDataLoss);
}

TEST(ByteReaderTest, ExpectEndCatchesTrailingBytes) {
  ByteWriter writer;
  writer.WriteU32(1);
  writer.WriteU8(0xff);
  ByteReader reader(writer.bytes());
  uint32_t out;
  ASSERT_TRUE(reader.ReadU32(&out).ok());
  EXPECT_EQ(reader.ExpectEnd().code(), StatusCode::kDataLoss);
}

TEST(ByteReaderTest, RemainingTracksConsumption) {
  ByteWriter writer;
  writer.WriteU64(1);
  writer.WriteU32(2);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.remaining(), 12u);
  uint64_t u64;
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  EXPECT_EQ(reader.remaining(), 4u);
}

TEST(FileBytesTest, RoundTrip) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "hybridlsh_serialize_test.bin")
                        .string();
  const std::vector<uint8_t> payload{9, 8, 7, 6};
  ASSERT_TRUE(WriteFileBytes(path, payload).ok());
  auto restored = ReadFileBytes(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, payload);
  std::filesystem::remove(path);
}

TEST(FileBytesTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadFileBytes("/nonexistent/path/x.bin").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace util
}  // namespace hybridlsh
