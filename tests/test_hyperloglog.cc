// Unit, property, and failure-injection tests for hll/hyperloglog.h.
//
// The paper's Table 1 depends on HLL delivering < 10% relative error at
// m = 128; the parameterized sweeps here verify the error bound across
// precisions and cardinalities.

#include "hll/hyperloglog.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace hybridlsh {
namespace hll {
namespace {

TEST(HyperLogLogTest, EmptyEstimateIsZero) {
  HyperLogLog sketch(7);
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 0.0);
}

TEST(HyperLogLogTest, PrecisionAccessors) {
  HyperLogLog sketch(7);
  EXPECT_EQ(sketch.precision(), 7);
  EXPECT_EQ(sketch.num_registers(), 128u);
  EXPECT_EQ(sketch.MemoryBytes(), 128u);
  EXPECT_NEAR(sketch.StandardError(), 1.04 / std::sqrt(128.0), 1e-12);
}

TEST(HyperLogLogTest, CreateRejectsBadPrecision) {
  EXPECT_FALSE(HyperLogLog::Create(3).ok());
  EXPECT_FALSE(HyperLogLog::Create(19).ok());
  EXPECT_TRUE(HyperLogLog::Create(4).ok());
  EXPECT_TRUE(HyperLogLog::Create(18).ok());
}

TEST(HyperLogLogDeathTest, ConstructorAbortsOnBadPrecision) {
  EXPECT_DEATH(HyperLogLog(2), "HLSH_CHECK");
}

TEST(HyperLogLogTest, SingleElement) {
  HyperLogLog sketch(7);
  sketch.AddPoint(12345);
  EXPECT_NEAR(sketch.Estimate(), 1.0, 0.05);
}

TEST(HyperLogLogTest, UpdatesAreIdempotent) {
  HyperLogLog once(7), thrice(7);
  for (uint32_t id = 0; id < 500; ++id) {
    once.AddPoint(id);
    thrice.AddPoint(id);
    thrice.AddPoint(id);
    thrice.AddPoint(id);
  }
  EXPECT_EQ(once, thrice);
}

TEST(HyperLogLogTest, SmallRangeIsNearExact) {
  // Linear counting makes tiny cardinalities very accurate.
  HyperLogLog sketch(7);
  for (uint32_t id = 0; id < 20; ++id) sketch.AddPoint(id);
  EXPECT_NEAR(sketch.Estimate(), 20.0, 2.0);
}

TEST(HyperLogLogTest, ClearResetsEstimate) {
  HyperLogLog sketch(7);
  for (uint32_t id = 0; id < 1000; ++id) sketch.AddPoint(id);
  sketch.Clear();
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 0.0);
}

TEST(HyperLogLogTest, MergeEqualsSketchOfUnion) {
  // Register-wise max must be *exactly* the sketch of the union — this is
  // the property that lets the paper treat L buckets as one stream.
  HyperLogLog a(7), b(7), expected_union(7);
  for (uint32_t id = 0; id < 3000; ++id) {
    if (id % 2 == 0) a.AddPoint(id);
    if (id % 3 == 0) b.AddPoint(id);
    if (id % 2 == 0 || id % 3 == 0) expected_union.AddPoint(id);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a, expected_union);
}

TEST(HyperLogLogTest, MergeWithOverlapDoesNotDoubleCount) {
  HyperLogLog a(7), b(7);
  for (uint32_t id = 0; id < 2000; ++id) {
    a.AddPoint(id);
    b.AddPoint(id);  // same ids
  }
  ASSERT_TRUE(a.Merge(b).ok());
  const double est = a.Estimate();
  EXPECT_NEAR(est, 2000.0, 2000.0 * 3 * a.StandardError());
}

TEST(HyperLogLogTest, MergeRejectsPrecisionMismatch) {
  HyperLogLog a(6), b(7);
  EXPECT_EQ(a.Merge(b).code(), util::StatusCode::kFailedPrecondition);
}

TEST(HyperLogLogTest, MergeManyPartitionsMatchesWholeStream) {
  // Partition 10k ids into 50 "buckets" (as the L hash tables do), merge,
  // and compare against a sketch of the whole stream.
  constexpr int kParts = 50;
  std::vector<HyperLogLog> parts(kParts, HyperLogLog(7));
  HyperLogLog whole(7);
  for (uint32_t id = 0; id < 10000; ++id) {
    parts[id % kParts].AddPoint(id);
    whole.AddPoint(id);
  }
  HyperLogLog merged(7);
  for (const auto& part : parts) ASSERT_TRUE(merged.Merge(part).ok());
  EXPECT_EQ(merged, whole);
}

TEST(HyperLogLogTest, SerializeRoundTrip) {
  HyperLogLog sketch(7);
  for (uint32_t id = 0; id < 5000; ++id) sketch.AddPoint(id * 17);
  const std::vector<uint8_t> bytes = sketch.Serialize();
  EXPECT_EQ(bytes.size(), 1u + 128u);
  auto restored = HyperLogLog::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, sketch);
  EXPECT_DOUBLE_EQ(restored->Estimate(), sketch.Estimate());
}

TEST(HyperLogLogTest, DeserializeRejectsEmptyBuffer) {
  EXPECT_EQ(HyperLogLog::Deserialize({}).status().code(),
            util::StatusCode::kDataLoss);
}

TEST(HyperLogLogTest, DeserializeRejectsBadPrecision) {
  std::vector<uint8_t> bytes{42};  // precision byte out of range
  bytes.resize(1 + (1ull << 7), 0);
  EXPECT_FALSE(HyperLogLog::Deserialize(bytes).ok());
}

TEST(HyperLogLogTest, DeserializeRejectsTruncatedBuffer) {
  HyperLogLog sketch(7);
  std::vector<uint8_t> bytes = sketch.Serialize();
  bytes.pop_back();
  EXPECT_EQ(HyperLogLog::Deserialize(bytes).status().code(),
            util::StatusCode::kDataLoss);
}

TEST(HyperLogLogTest, DeserializeRejectsOversizedBuffer) {
  HyperLogLog sketch(7);
  std::vector<uint8_t> bytes = sketch.Serialize();
  bytes.push_back(0);
  EXPECT_FALSE(HyperLogLog::Deserialize(bytes).ok());
}

TEST(HyperLogLogTest, DeserializeRejectsCorruptRegister) {
  HyperLogLog sketch(7);
  std::vector<uint8_t> bytes = sketch.Serialize();
  bytes[5] = 255;  // impossible rank for precision 7 (max 58)
  EXPECT_EQ(HyperLogLog::Deserialize(bytes).status().code(),
            util::StatusCode::kDataLoss);
}

TEST(HyperLogLogTest, PointHashIsStable) {
  EXPECT_EQ(PointHash(7), PointHash(7));
  EXPECT_NE(PointHash(7), PointHash(8));
}

// --- Parameterized accuracy sweep -----------------------------------------

struct AccuracyCase {
  int precision;
  uint32_t cardinality;
};

class HllAccuracySweep : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(HllAccuracySweep, RelativeErrorWithinBound) {
  const auto [precision, cardinality] = GetParam();
  util::Rng rng(precision * 1000003u + cardinality);
  HyperLogLog sketch(precision);
  for (uint32_t i = 0; i < cardinality; ++i) sketch.AddHash(rng.NextU64());
  const double est = sketch.Estimate();
  const double rel_err = std::abs(est - cardinality) / cardinality;
  // 4 standard errors, plus 2% absolute slack for small-range transitions.
  const double bound = 4.0 * sketch.StandardError() + 0.02;
  EXPECT_LT(rel_err, bound) << "precision=" << precision
                            << " cardinality=" << cardinality
                            << " estimate=" << est;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HllAccuracySweep,
    ::testing::Values(AccuracyCase{5, 100}, AccuracyCase{5, 1000},
                      AccuracyCase{5, 10000}, AccuracyCase{6, 100},
                      AccuracyCase{6, 1000}, AccuracyCase{6, 50000},
                      AccuracyCase{7, 100}, AccuracyCase{7, 1000},
                      AccuracyCase{7, 10000}, AccuracyCase{7, 100000},
                      AccuracyCase{10, 1000}, AccuracyCase{10, 100000},
                      AccuracyCase{12, 500000}),
    [](const ::testing::TestParamInfo<AccuracyCase>& info) {
      return "p" + std::to_string(info.param.precision) + "_n" +
             std::to_string(info.param.cardinality);
    });

// Average relative error over repeated trials should be close to the
// theoretical standard error (the paper observes ~6-7% at m = 128).
TEST(HyperLogLogTest, MeanRelativeErrorNearTheory) {
  constexpr int kTrials = 60;
  constexpr uint32_t kCardinality = 20000;
  util::Rng rng(99);
  double total_rel_err = 0;
  for (int t = 0; t < kTrials; ++t) {
    HyperLogLog sketch(7);
    for (uint32_t i = 0; i < kCardinality; ++i) sketch.AddHash(rng.NextU64());
    total_rel_err += std::abs(sketch.Estimate() - kCardinality) / kCardinality;
  }
  const double mean_rel_err = total_rel_err / kTrials;
  // E|N(0,s)| = s*sqrt(2/pi) ~ 0.8 s; allow [0.3 s, 1.6 s].
  const double s = 1.04 / std::sqrt(128.0);
  EXPECT_GT(mean_rel_err, 0.3 * s);
  EXPECT_LT(mean_rel_err, 1.6 * s);
}

}  // namespace
}  // namespace hll
}  // namespace hybridlsh
