// Tests for lsh/params.h: probability formulas and the paper's k rule.

#include "lsh/params.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace lsh {
namespace {

TEST(GaussianCollisionTest, ZeroDistanceIsCertain) {
  EXPECT_DOUBLE_EQ(GaussianCollisionProbability(0.0, 4.0), 1.0);
}

TEST(GaussianCollisionTest, MonotoneDecreasingInDistance) {
  double prev = 1.0;
  for (double r = 0.5; r < 20; r += 0.5) {
    const double p = GaussianCollisionProbability(r, 4.0);
    EXPECT_LT(p, prev) << "r=" << r;
    EXPECT_GT(p, 0.0);
    prev = p;
  }
}

TEST(GaussianCollisionTest, MonotoneIncreasingInWindow) {
  double prev = 0.0;
  for (double w = 1; w < 32; w *= 2) {
    const double p = GaussianCollisionProbability(2.0, w);
    EXPECT_GT(p, prev) << "w=" << w;
    prev = p;
  }
}

TEST(GaussianCollisionTest, PaperSettingIsUsable) {
  // Paper: w = 2r for L2 with k = 7, delta = 0.1, L = 50. p1 must be a
  // sensible probability.
  const double p1 = GaussianCollisionProbability(1.0, 2.0);
  EXPECT_GT(p1, 0.5);
  EXPECT_LT(p1, 1.0);
}

TEST(CauchyCollisionTest, ZeroDistanceIsCertain) {
  EXPECT_DOUBLE_EQ(CauchyCollisionProbability(0.0, 4.0), 1.0);
}

TEST(CauchyCollisionTest, MonotoneDecreasingInDistance) {
  double prev = 1.0;
  for (double r = 0.5; r < 20; r += 0.5) {
    const double p = CauchyCollisionProbability(r, 4.0);
    EXPECT_LT(p, prev);
    EXPECT_GT(p, 0.0);
    prev = p;
  }
}

TEST(CauchyCollisionTest, PaperSettingIsUsable) {
  // Paper: w = 4r for L1 with k = 8.
  const double p1 = CauchyCollisionProbability(1.0, 4.0);
  EXPECT_GT(p1, 0.5);
  EXPECT_LT(p1, 1.0);
}

TEST(SimHashCollisionTest, KnownAngles) {
  // Identical direction: p = 1. Orthogonal: p = 0.5. Opposite: p = 0.
  EXPECT_NEAR(SimHashCollisionProbability(0.0), 1.0, 1e-12);
  EXPECT_NEAR(SimHashCollisionProbability(1.0), 0.5, 1e-12);
  EXPECT_NEAR(SimHashCollisionProbability(2.0), 0.0, 1e-12);
}

TEST(SimHashCollisionTest, MonotoneDecreasing) {
  double prev = 1.1;
  for (double s = 0; s <= 2.0; s += 0.1) {
    const double p = SimHashCollisionProbability(s);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(BitSamplingCollisionTest, LinearInDistance) {
  EXPECT_DOUBLE_EQ(BitSamplingCollisionProbability(0, 64), 1.0);
  EXPECT_DOUBLE_EQ(BitSamplingCollisionProbability(16, 64), 0.75);
  EXPECT_DOUBLE_EQ(BitSamplingCollisionProbability(64, 64), 0.0);
  EXPECT_DOUBLE_EQ(BitSamplingCollisionProbability(100, 64), 0.0);  // clamped
}

TEST(MinHashCollisionTest, OneMinusJaccard) {
  EXPECT_DOUBLE_EQ(MinHashCollisionProbability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(MinHashCollisionProbability(0.3), 0.7);
  EXPECT_DOUBLE_EQ(MinHashCollisionProbability(1.0), 0.0);
}

TEST(AutoKTest, RejectsBadInputs) {
  EXPECT_FALSE(AutoK(0.9, 0, 0.1).ok());
  EXPECT_FALSE(AutoK(0.9, 50, 0.0).ok());
  EXPECT_FALSE(AutoK(0.9, 50, 1.0).ok());
  EXPECT_FALSE(AutoK(0.0, 50, 0.1).ok());
  EXPECT_FALSE(AutoK(-0.5, 50, 0.1).ok());
}

TEST(AutoKTest, CertainCollisionGivesKOne) {
  auto k = AutoK(1.0, 50, 0.1);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 1);
}

TEST(AutoKTest, MatchesClosedForm) {
  // delta = 0.1, L = 50: target = 1 - 0.1^(1/50) ~ 0.045007.
  // p1 = 0.9: k = ln(0.045007)/ln(0.9) ~ 29.4 -> 30.
  auto k = AutoK(0.9, 50, 0.1);
  ASSERT_TRUE(k.ok());
  const double target = 1.0 - std::pow(0.1, 1.0 / 50.0);
  EXPECT_EQ(*k, static_cast<int>(std::ceil(std::log(target) / std::log(0.9))));
}

TEST(AutoKTest, IncreasingInP1) {
  // Higher collision probability needs more concatenation to filter.
  int prev = 0;
  for (double p1 : {0.5, 0.7, 0.9, 0.95, 0.99}) {
    auto k = AutoK(p1, 50, 0.1);
    ASSERT_TRUE(k.ok());
    EXPECT_GE(*k, prev) << "p1=" << p1;
    prev = *k;
  }
}

TEST(AutoKTest, AtLeastOne) {
  // Tiny p1 with lenient delta could push the formula below 1.
  auto k = AutoK(0.01, 2, 0.9);
  ASSERT_TRUE(k.ok());
  EXPECT_GE(*k, 1);
}

TEST(RecallLowerBoundTest, FloorKMeetsDelta) {
  // With the un-ceiled k the guarantee holds exactly; so k-1 (<= floor)
  // must meet 1 - delta.
  for (double p1 : {0.6, 0.8, 0.9, 0.95}) {
    for (double delta : {0.05, 0.1, 0.2}) {
      auto k = AutoK(p1, 50, delta);
      ASSERT_TRUE(k.ok());
      const int floor_k = std::max(1, *k - 1);
      EXPECT_GE(RecallLowerBound(floor_k, 50, p1), 1.0 - delta - 1e-9)
          << "p1=" << p1 << " delta=" << delta;
    }
  }
}

TEST(RecallLowerBoundTest, CeiledKIsClose) {
  // The paper's ceil rounding can undershoot 1 - delta, but not by much:
  // p1^ceil(k) >= p1 * p1^k, so the bound stays >= 1-(1-p1*t)^L.
  for (double p1 : {0.6, 0.8, 0.9, 0.95}) {
    auto k = AutoK(p1, 50, 0.1);
    ASSERT_TRUE(k.ok());
    const double bound = RecallLowerBound(*k, 50, p1);
    const double target = 1.0 - std::pow(0.1, 1.0 / 50.0);
    const double worst = 1.0 - std::pow(1.0 - p1 * target, 50);
    EXPECT_GE(bound, worst - 1e-9);
    // The ceil can cost real recall at small p1 (p1 = 0.6 lands at ~0.76 vs
    // the 0.9 target) — a property of the paper's practical setting worth
    // pinning down, not a bug.
    EXPECT_GT(bound, 0.7);
  }
}

TEST(RecallLowerBoundTest, MoreTablesHelp) {
  double prev = 0;
  for (int L : {1, 5, 20, 50, 200}) {
    const double bound = RecallLowerBound(10, L, 0.9);
    EXPECT_GT(bound, prev);
    prev = bound;
  }
}

TEST(RecallLowerBoundTest, Extremes) {
  EXPECT_DOUBLE_EQ(RecallLowerBound(5, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(RecallLowerBound(5, 10, 0.0), 0.0);
}

}  // namespace
}  // namespace lsh
}  // namespace hybridlsh
