// Tests for data/transform.h.

#include "data/transform.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace hybridlsh {
namespace data {
namespace {

TEST(NormalizeUnitL2Test, AllPointsUnitNorm) {
  DenseDataset dataset = MakeGaussianMixture(
      {.n = 100, .dim = 8, .num_clusters = 3, .seed = 1});
  NormalizeUnitL2(&dataset);
  for (size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_NEAR(Norm(dataset.point(i), 8), 1.0f, 1e-5f);
  }
}

TEST(NormalizeUnitL2Test, ZeroVectorUntouched) {
  DenseDataset dataset(2, 3);
  dataset.mutable_point(1)[0] = 5.0f;
  NormalizeUnitL2(&dataset);
  EXPECT_EQ(dataset.point(0)[0], 0.0f);  // zero row stays zero
  EXPECT_NEAR(dataset.point(1)[0], 1.0f, 1e-6f);
}

TEST(NormalizeUnitL2Test, PreservesDirections) {
  DenseDataset dataset(1, 2);
  dataset.mutable_point(0)[0] = 3.0f;
  dataset.mutable_point(0)[1] = 4.0f;
  NormalizeUnitL2(&dataset);
  EXPECT_NEAR(dataset.point(0)[0], 0.6f, 1e-6f);
  EXPECT_NEAR(dataset.point(0)[1], 0.8f, 1e-6f);
}

TEST(FitMinMaxTest, MapsOntoUnitInterval) {
  DenseDataset dataset = MakeGaussianMixture(
      {.n = 500, .dim = 6, .num_clusters = 4, .seed = 2});
  auto transform = FitMinMax(dataset);
  ASSERT_TRUE(transform.ok());
  ASSERT_TRUE(transform->Apply(&dataset).ok());
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_GE(dataset.point(i)[j], -1e-6f);
      EXPECT_LE(dataset.point(i)[j], 1.0f + 1e-6f);
    }
  }
}

TEST(FitMinMaxTest, ConstantDimensionMapsToZero) {
  DenseDataset dataset(3, 2);
  for (size_t i = 0; i < 3; ++i) {
    dataset.mutable_point(i)[0] = 7.0f;  // constant
    dataset.mutable_point(i)[1] = static_cast<float>(i);
  }
  auto transform = FitMinMax(dataset);
  ASSERT_TRUE(transform.ok());
  ASSERT_TRUE(transform->Apply(&dataset).ok());
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(dataset.point(i)[0], 0.0f);
  EXPECT_EQ(dataset.point(2)[1], 1.0f);
}

TEST(FitMinMaxTest, EmptyDatasetFails) {
  const DenseDataset empty(0, 4);
  EXPECT_FALSE(FitMinMax(empty).ok());
}

TEST(FitStandardizeTest, ZeroMeanUnitVariance) {
  DenseDataset dataset = MakeGaussianMixture(
      {.n = 2000, .dim = 4, .num_clusters = 2, .seed = 3});
  auto transform = FitStandardize(dataset);
  ASSERT_TRUE(transform.ok());
  ASSERT_TRUE(transform->Apply(&dataset).ok());
  for (size_t j = 0; j < 4; ++j) {
    double sum = 0, sum_sq = 0;
    for (size_t i = 0; i < dataset.size(); ++i) {
      sum += dataset.point(i)[j];
      sum_sq += static_cast<double>(dataset.point(i)[j]) * dataset.point(i)[j];
    }
    const double mean = sum / dataset.size();
    const double var = sum_sq / dataset.size() - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-3);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(FitStandardizeTest, SameTransformAppliesToQueries) {
  // The core contract: fit on base, apply to base AND queries.
  const DenseDataset original = MakeUniformCube(200, 3, 4);
  DenseDataset base = original;
  DenseDataset query(1, 3);
  for (size_t j = 0; j < 3; ++j) {
    query.mutable_point(0)[j] = original.point(7)[j];
  }
  auto transform = FitStandardize(base);
  ASSERT_TRUE(transform.ok());
  ASSERT_TRUE(transform->Apply(&base).ok());
  ASSERT_TRUE(transform->Apply(&query).ok());
  // The transformed query must coincide with transformed base point 7.
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(query.point(0)[j], base.point(7)[j]);
  }
}

TEST(AffineTransformTest, DimensionMismatchFails) {
  const DenseDataset dataset = MakeUniformCube(10, 4, 5);
  auto transform = FitMinMax(dataset);
  ASSERT_TRUE(transform.ok());
  DenseDataset wrong(5, 7);
  EXPECT_EQ(transform->Apply(&wrong).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(DistanceQuantilesTest, QuantilesAreMonotone) {
  const DenseDataset dataset = MakeCorelLike(3000, 16, 6);
  auto quantiles = DistanceQuantiles(dataset, Metric::kL2,
                                     {0.01, 0.1, 0.5, 0.9}, 5000, 7);
  ASSERT_TRUE(quantiles.ok());
  ASSERT_EQ(quantiles->size(), 4u);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_LE((*quantiles)[i - 1], (*quantiles)[i]);
  }
  EXPECT_GT((*quantiles)[0], 0.0f);
}

TEST(DistanceQuantilesTest, CosineBounded) {
  DenseDataset dataset =
      MakeWebspamLike({.n = 1000, .dim = 32, .seed = 8});
  auto quantiles =
      DistanceQuantiles(dataset, Metric::kCosine, {0.0, 1.0}, 2000, 9);
  ASSERT_TRUE(quantiles.ok());
  EXPECT_GE((*quantiles)[0], 0.0f);
  EXPECT_LE((*quantiles)[1], 2.0f);
}

TEST(DistanceQuantilesTest, DeterministicInSeed) {
  const DenseDataset dataset = MakeUniformCube(500, 8, 10);
  auto a = DistanceQuantiles(dataset, Metric::kL1, {0.5}, 1000, 11);
  auto b = DistanceQuantiles(dataset, Metric::kL1, {0.5}, 1000, 11);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)[0], (*b)[0]);
}

TEST(DistanceQuantilesTest, RejectsTinyDatasets) {
  const DenseDataset dataset(1, 4);
  EXPECT_FALSE(DistanceQuantiles(dataset, Metric::kL2, {0.5}).ok());
}

TEST(DistanceQuantilesTest, RejectsNonDenseMetrics) {
  const DenseDataset dataset = MakeUniformCube(10, 4, 12);
  EXPECT_FALSE(DistanceQuantiles(dataset, Metric::kHamming, {0.5}).ok());
}

}  // namespace
}  // namespace data
}  // namespace hybridlsh
