// Tests for engine/segmented_index.h: the mutable lifecycle must be
// indistinguishable from a static rebuild.
//
// The core property: after ANY interleaving of inserts, deletes, seals and
// compactions, query results over the segmented index equal those of a
// fresh LshIndex built over the current live point set with the same seed
// (ids mapped through the live-id list, sorted). Checked under forced-LSH
// and forced-linear execution — the two deterministic strategies — for two
// LSH families (p-stable L2 and bit-sampling Hamming) and with multi-probe
// enabled; the auto decision is bracketed between them. Lifecycle
// accounting (seal thresholds, tombstone counts, auto-compaction) is
// verified alongside.

#include "engine/segmented_index.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybridlsh.h"

namespace hybridlsh {
namespace engine {
namespace {

std::vector<uint32_t> Sorted(std::vector<uint32_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool IsSubset(const std::vector<uint32_t>& sub,
              const std::vector<uint32_t>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

data::DenseDataset MakeEmptyLike(const data::DenseDataset& dataset) {
  return data::DenseDataset(0, dataset.dim());
}
data::BinaryDataset MakeEmptyLike(const data::BinaryDataset& dataset) {
  return data::BinaryDataset(0, dataset.width_bits());
}

/// Rebuilds a static LshIndex over the live points of (index, dataset) and
/// returns, per query, the sorted global ids the static index reports under
/// `forced`. The static index numbers points 0..live-1; results are mapped
/// back through the live-id list, so they are directly comparable with the
/// segmented index's output.
template <typename Family, typename Dataset, typename Queries>
std::vector<std::vector<uint32_t>> StaticRebuildResults(
    const SegmentedIndex<Family, Dataset>& index, const Dataset& dataset,
    const Queries& queries, double radius,
    const typename lsh::LshIndex<Family>::Options& options,
    core::SearcherOptions searcher_options, core::ForcedStrategy forced) {
  std::vector<uint32_t> live_ids;
  index.ForEachLiveId([&](uint32_t id) { live_ids.push_back(id); });
  std::sort(live_ids.begin(), live_ids.end());

  Dataset live = MakeEmptyLike(dataset);
  for (const uint32_t id : live_ids) {
    HLSH_CHECK(AppendDatasetPoint(&live, dataset.point(id)).ok());
  }

  auto rebuilt =
      lsh::LshIndex<Family>::Build(index.family(), live, options);
  HLSH_CHECK(rebuilt.ok());
  searcher_options.forced = forced;
  core::HybridSearcher<lsh::LshIndex<Family>, Dataset> searcher(
      &*rebuilt, &live, searcher_options);

  std::vector<std::vector<uint32_t>> results(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<uint32_t> local;
    searcher.Query(queries.point(q), radius, &local);
    for (uint32_t& id : local) id = live_ids[id];
    results[q] = Sorted(std::move(local));
  }
  return results;
}

/// One live query pass over the segmented index under `forced`.
template <typename Family, typename Dataset, typename Queries>
std::vector<std::vector<uint32_t>> SegmentedResults(
    const SegmentedIndex<Family, Dataset>& index, const Dataset& dataset,
    const Queries& queries, double radius,
    core::SearcherOptions searcher_options, core::ForcedStrategy forced) {
  searcher_options.forced = forced;
  core::HybridSearcher<SegmentedIndex<Family, Dataset>, Dataset> searcher(
      &index, &dataset, searcher_options);
  std::vector<std::vector<uint32_t>> results(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    searcher.Query(queries.point(q), radius, &results[q]);
    results[q] = Sorted(std::move(results[q]));
  }
  return results;
}

// ---------------------------------------------------------------------------
// Dense / L2, with multi-probe enabled (acceptance: multi-probe path).

class SegmentedL2Test : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 16;
  static constexpr double kRadius = 0.4;

  void SetUp() override {
    const data::DenseDataset full = data::MakeCorelLike(2403, kDim, 17);
    const data::DenseSplit split = data::SplitQueries(full, 20, 18);
    dataset_ = split.base;
    queries_ = split.queries;
    // Fresh points to stream in, disjoint from the base set.
    incoming_ = data::MakeCorelLike(1200, kDim, 19);

    index_options_.num_tables = 20;
    index_options_.k = 7;
    index_options_.seed = 23;
    searcher_options_.cost_model = core::CostModel::FromRatio(6.0);
    searcher_options_.probes_per_table = 3;  // multi-probe on
  }

  SegmentedIndex<lsh::PStableFamily>::Options SegOptions() const {
    SegmentedIndex<lsh::PStableFamily>::Options options;
    options.index = index_options_;
    options.index.num_build_threads = 2;
    options.active_seal_threshold = 256;
    options.max_sealed_segments = 3;
    return options;
  }

  lsh::PStableFamily Family() const {
    return lsh::PStableFamily::L2(kDim, 2 * kRadius);
  }

  /// Asserts the segmented index matches a static rebuild for both forced
  /// strategies and that the auto decision is bracketed between them.
  void ExpectEquivalent(const SegmentedIndex<lsh::PStableFamily>& index) {
    for (const auto forced : {core::ForcedStrategy::kAlwaysLsh,
                              core::ForcedStrategy::kAlwaysLinear}) {
      const auto segmented = SegmentedResults(index, dataset_, queries_,
                                              kRadius, searcher_options_,
                                              forced);
      const auto rebuilt = StaticRebuildResults(
          index, dataset_, queries_, kRadius, index_options_,
          searcher_options_, forced);
      for (size_t q = 0; q < queries_.size(); ++q) {
        EXPECT_EQ(segmented[q], rebuilt[q])
            << "query " << q << " forced=" << static_cast<int>(forced);
      }
    }
    const auto lsh = SegmentedResults(index, dataset_, queries_, kRadius,
                                      searcher_options_,
                                      core::ForcedStrategy::kAlwaysLsh);
    const auto linear = SegmentedResults(index, dataset_, queries_, kRadius,
                                         searcher_options_,
                                         core::ForcedStrategy::kAlwaysLinear);
    const auto auto_mode = SegmentedResults(index, dataset_, queries_, kRadius,
                                            searcher_options_,
                                            core::ForcedStrategy::kAuto);
    for (size_t q = 0; q < queries_.size(); ++q) {
      EXPECT_TRUE(IsSubset(lsh[q], linear[q]));
      EXPECT_TRUE(IsSubset(auto_mode[q], linear[q]));
      EXPECT_TRUE(IsSubset(lsh[q], auto_mode[q]));
    }
  }

  data::DenseDataset dataset_;
  data::DenseDataset queries_;
  data::DenseDataset incoming_;
  lsh::LshIndex<lsh::PStableFamily>::Options index_options_;
  core::SearcherOptions searcher_options_;
};

TEST_F(SegmentedL2Test, ChurnMatchesStaticRebuildAtEveryPhase) {
  auto built = SegmentedIndex<lsh::PStableFamily>::Build(
      Family(), &dataset_, 0, dataset_.size(), SegOptions());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto index = std::move(*built);
  ASSERT_TRUE(index.EnableUpdates(&dataset_).ok());

  util::Rng rng(29);
  size_t next_incoming = 0;
  const size_t initial_n = dataset_.size();

  // Phase 1: inserts only (several seals happen at threshold 256).
  for (size_t i = 0; i < 600; ++i) {
    auto id = index.Insert(incoming_.point(next_incoming++));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, initial_n + i);
  }
  EXPECT_GT(index.lifecycle().sealed_segments, 1u);
  ExpectEquivalent(index);

  // Phase 2: deletes across both the initial range and the inserted tail.
  size_t removed = 0;
  for (size_t i = 0; i < 300; ++i) {
    const uint32_t id = static_cast<uint32_t>(
        rng.UniformInt(0, static_cast<int64_t>(dataset_.size() - 1)));
    if (index.is_live(id)) ++removed;
    ASSERT_TRUE(index.Remove(id).ok());
  }
  EXPECT_EQ(index.live_size(), initial_n + 600 - removed);
  EXPECT_LT(index.live_fraction(), 1.0);
  ExpectEquivalent(index);

  // Phase 3: explicit compaction drops every tombstone.
  index.Compact();
  EXPECT_EQ(index.lifecycle().tombstones, 0u);
  EXPECT_EQ(index.lifecycle().sealed_segments, 1u);
  EXPECT_DOUBLE_EQ(index.live_fraction(), 1.0);
  EXPECT_EQ(index.live_size(), initial_n + 600 - removed);
  ExpectEquivalent(index);

  // Phase 4: mixed churn afterwards, relying on auto-seal + auto-compact.
  for (size_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(index.Insert(incoming_.point(next_incoming++)).ok());
    if (i % 3 == 0) {
      const uint32_t id = static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(dataset_.size() - 1)));
      ASSERT_TRUE(index.Remove(id).ok());
    }
  }
  ExpectEquivalent(index);
}

TEST_F(SegmentedL2Test, StreamingFromZeroMatchesStaticRebuild) {
  data::DenseDataset empty(0, kDim);
  auto built = SegmentedIndex<lsh::PStableFamily>::Build(Family(), &empty, 0,
                                                         0, SegOptions());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto index = std::move(*built);
  ASSERT_TRUE(index.EnableUpdates(&empty).ok());
  EXPECT_EQ(index.live_size(), 0u);

  for (size_t i = 0; i < 700; ++i) {
    ASSERT_TRUE(index.Insert(incoming_.point(i)).ok());
  }
  EXPECT_EQ(index.live_size(), 700u);

  // Query against the dataset the index actually grew (the index holds a
  // pointer to `empty`, so dataset_ cannot stand in for it).
  for (const auto forced : {core::ForcedStrategy::kAlwaysLsh,
                            core::ForcedStrategy::kAlwaysLinear}) {
    const auto segmented = SegmentedResults(index, empty, queries_, kRadius,
                                            searcher_options_, forced);
    const auto rebuilt =
        StaticRebuildResults(index, empty, queries_, kRadius, index_options_,
                             searcher_options_, forced);
    for (size_t q = 0; q < queries_.size(); ++q) {
      EXPECT_EQ(segmented[q], rebuilt[q]) << "query " << q;
    }
  }
}

TEST_F(SegmentedL2Test, LifecycleAccountingAndGuards) {
  auto built = SegmentedIndex<lsh::PStableFamily>::Build(
      Family(), &dataset_, 0, dataset_.size(), SegOptions());
  ASSERT_TRUE(built.ok());
  auto index = std::move(*built);

  // Read-only until EnableUpdates; Remove works regardless.
  EXPECT_FALSE(index.Insert(incoming_.point(0)).ok());
  EXPECT_TRUE(index.Remove(0).ok());
  EXPECT_TRUE(index.Remove(0).ok());  // idempotent
  EXPECT_EQ(index.lifecycle().tombstones, 1u);
  EXPECT_EQ(index.live_size(), dataset_.size() - 1);

  // A foreign dataset is rejected; the indexed one is accepted.
  data::DenseDataset other(5, kDim);
  EXPECT_FALSE(index.EnableUpdates(&other).ok());
  ASSERT_TRUE(index.EnableUpdates(&dataset_).ok());

  // Active points count until the seal threshold freezes them.
  const size_t threshold = SegOptions().active_seal_threshold;
  for (size_t i = 0; i < threshold - 1; ++i) {
    ASSERT_TRUE(index.Insert(incoming_.point(i)).ok());
  }
  EXPECT_EQ(index.lifecycle().active_points, threshold - 1);
  EXPECT_EQ(index.lifecycle().sealed_segments, 1u);
  ASSERT_TRUE(index.Insert(incoming_.point(threshold - 1)).ok());
  EXPECT_EQ(index.lifecycle().active_points, 0u);
  EXPECT_EQ(index.lifecycle().sealed_segments, 2u);
  EXPECT_GT(index.SketchBytes(), 0u);

  // Out-of-range removes are rejected.
  EXPECT_FALSE(index.Remove(static_cast<uint32_t>(dataset_.size())).ok());

  // Compacting everything away leaves a queryable empty index.
  const size_t n = dataset_.size();
  for (uint32_t id = 0; id < n; ++id) ASSERT_TRUE(index.Remove(id).ok());
  EXPECT_EQ(index.live_size(), 0u);
  index.Compact();
  EXPECT_EQ(index.lifecycle().sealed_segments, 0u);
  std::vector<uint32_t> out;
  core::SearcherOptions options = searcher_options_;
  core::HybridSearcher<SegmentedIndex<lsh::PStableFamily>,
                       data::DenseDataset>
      searcher(&index, &dataset_, options);
  searcher.Query(queries_.point(0), kRadius, &out);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// Binary / Hamming: the second family of the acceptance matrix.

TEST(SegmentedHammingTest, ChurnMatchesStaticRebuild) {
  constexpr size_t kBits = 64;
  constexpr double kRadius = 12;

  const data::BinaryDataset codes = data::MakeRandomCodes(1603, kBits, 31);
  const data::BinarySplit split = data::SplitQueriesBinary(codes, 15, 32);
  data::BinaryDataset dataset = split.base;
  const data::BinaryDataset queries = split.queries;
  const data::BinaryDataset incoming = data::MakeRandomCodes(900, kBits, 33);

  lsh::LshIndex<lsh::BitSamplingFamily>::Options index_options;
  index_options.num_tables = 20;
  index_options.k = 9;
  index_options.seed = 37;

  SegmentedIndex<lsh::BitSamplingFamily>::Options options;
  options.index = index_options;
  options.active_seal_threshold = 200;
  options.max_sealed_segments = 2;

  core::SearcherOptions searcher_options;
  searcher_options.cost_model = core::CostModel::FromRatio(6.0);
  searcher_options.probes_per_table = 2;  // multi-probe on (bit flips)

  auto built = SegmentedIndex<lsh::BitSamplingFamily>::Build(
      lsh::BitSamplingFamily(kBits), &dataset, 0, dataset.size(), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto index = std::move(*built);
  ASSERT_TRUE(index.EnableUpdates(&dataset).ok());

  util::Rng rng(41);
  for (size_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(index.Insert(incoming.point(i)).ok());
    if (i % 4 == 0) {
      const uint32_t id = static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(dataset.size() - 1)));
      ASSERT_TRUE(index.Remove(id).ok());
    }
  }
  index.Compact();
  for (size_t i = 500; i < 900; ++i) {
    ASSERT_TRUE(index.Insert(incoming.point(i)).ok());
  }

  for (const auto forced : {core::ForcedStrategy::kAlwaysLsh,
                            core::ForcedStrategy::kAlwaysLinear}) {
    const auto segmented = SegmentedResults(index, dataset, queries, kRadius,
                                            searcher_options, forced);
    const auto rebuilt =
        StaticRebuildResults(index, dataset, queries, kRadius, index_options,
                             searcher_options, forced);
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(segmented[q], rebuilt[q]) << "query " << q;
    }
  }
}

}  // namespace
}  // namespace engine
}  // namespace hybridlsh
