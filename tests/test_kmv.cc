// Unit and property tests for hll/kmv.h (the ablation comparator sketch).

#include "hll/kmv.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "util/random.h"

namespace hybridlsh {
namespace hll {
namespace {

TEST(KmvSketchTest, EmptyEstimateIsZero) {
  KmvSketch sketch(64);
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 0.0);
  EXPECT_EQ(sketch.size(), 0u);
}

TEST(KmvSketchTest, CreateRejectsTinyK) {
  EXPECT_FALSE(KmvSketch::Create(2).ok());
  EXPECT_TRUE(KmvSketch::Create(3).ok());
}

TEST(KmvSketchDeathTest, ConstructorAbortsOnTinyK) {
  EXPECT_DEATH(KmvSketch(1), "HLSH_CHECK");
}

TEST(KmvSketchTest, ExactBelowK) {
  KmvSketch sketch(100);
  for (uint32_t id = 0; id < 50; ++id) sketch.AddPoint(id);
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 50.0);
}

TEST(KmvSketchTest, DuplicatesDoNotInflate) {
  KmvSketch sketch(100);
  for (int rep = 0; rep < 5; ++rep) {
    for (uint32_t id = 0; id < 50; ++id) sketch.AddPoint(id);
  }
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 50.0);
}

TEST(KmvSketchTest, DuplicatesAboveKDoNotInflate) {
  KmvSketch a(32), b(32);
  for (uint32_t id = 0; id < 5000; ++id) a.AddPoint(id);
  for (int rep = 0; rep < 3; ++rep) {
    for (uint32_t id = 0; id < 5000; ++id) b.AddPoint(id);
  }
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

TEST(KmvSketchTest, AccuracyWithinBound) {
  util::Rng rng(42);
  constexpr size_t kK = 256;
  constexpr uint32_t kN = 100000;
  KmvSketch sketch(kK);
  for (uint32_t i = 0; i < kN; ++i) sketch.AddHash(rng.NextU64());
  const double rel_err = std::abs(sketch.Estimate() - kN) / kN;
  // SE ~ 1/sqrt(k-2) ~ 6.3%; allow 4 SE.
  EXPECT_LT(rel_err, 4.0 / std::sqrt(kK - 2.0));
}

TEST(KmvSketchTest, MergeMatchesUnion) {
  util::Rng rng(7);
  KmvSketch a(128), b(128), whole(128);
  for (uint32_t i = 0; i < 20000; ++i) {
    const uint64_t h = rng.NextU64();
    if (i % 2 == 0) a.AddHash(h);
    if (i % 3 == 0) b.AddHash(h);
    if (i % 2 == 0 || i % 3 == 0) whole.AddHash(h);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), whole.Estimate());
}

TEST(KmvSketchTest, MergeRejectsDifferentK) {
  KmvSketch a(64), b(128);
  EXPECT_EQ(a.Merge(b).code(), util::StatusCode::kFailedPrecondition);
}

TEST(KmvSketchTest, MemoryBytesTracksRetained) {
  KmvSketch sketch(64);
  EXPECT_EQ(sketch.MemoryBytes(), 0u);
  for (uint32_t id = 0; id < 10; ++id) sketch.AddPoint(id);
  EXPECT_EQ(sketch.MemoryBytes(), 10 * sizeof(uint64_t));
  for (uint32_t id = 10; id < 1000; ++id) sketch.AddPoint(id);
  EXPECT_EQ(sketch.MemoryBytes(), 64 * sizeof(uint64_t));
}

TEST(KmvSketchTest, ClearResets) {
  KmvSketch sketch(16);
  for (uint32_t id = 0; id < 100; ++id) sketch.AddPoint(id);
  sketch.Clear();
  EXPECT_EQ(sketch.size(), 0u);
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 0.0);
}

class KmvAccuracySweep
    : public ::testing::TestWithParam<std::pair<size_t, uint32_t>> {};

TEST_P(KmvAccuracySweep, ErrorScalesWithK) {
  const auto [k, n] = GetParam();
  util::Rng rng(k * 31 + n);
  KmvSketch sketch(k);
  for (uint32_t i = 0; i < n; ++i) sketch.AddHash(rng.NextU64());
  const double rel_err = std::abs(sketch.Estimate() - n) / n;
  EXPECT_LT(rel_err, 4.0 / std::sqrt(static_cast<double>(k) - 2.0) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KmvAccuracySweep,
    ::testing::Values(std::make_pair<size_t, uint32_t>(32, 10000),
                      std::make_pair<size_t, uint32_t>(64, 10000),
                      std::make_pair<size_t, uint32_t>(128, 50000),
                      std::make_pair<size_t, uint32_t>(256, 100000),
                      std::make_pair<size_t, uint32_t>(512, 100000)));

}  // namespace
}  // namespace hll
}  // namespace hybridlsh
