// Figure 2(b): CPU time vs radius on Webspam with cosine distance.
//
// Paper setup (§4): Webspam (n = 350,000, d = 254), SimHash, L = 50, k
// auto at delta = 0.1, radii 0.05..0.10, beta/alpha = 10. Paper shape:
// hybrid is *strictly* better than both pure strategies across the whole
// range, because Webspam mixes "hard" near-duplicate queries (answered by
// scan) with easy ones (answered by LSH) at every radius.
//
// Dataset substitution: MakeWebspamLike — a mega-cluster with a density
// gradient holding ~55% of the points; see DESIGN.md §2.

#include "bench_common.h"

using namespace hybridlsh;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Figure 2(b): Webspam-like, cosine distance via SimHash\n");
  bench::PrintScaleNote(scale);

  data::WebspamLikeConfig config;
  config.n = scale.N(350000);
  config.dim = 254;
  config.cluster_fraction = 0.55;
  config.eps_min = 0.02;
  config.eps_max = 0.40;
  config.seed = 211;
  const data::DenseDataset full = data::MakeWebspamLike(config);
  const data::DenseSplit split =
      data::SplitQueries(full, scale.num_queries, /*seed=*/212);
  std::printf("# n=%zu queries=%zu d=%zu L=50 delta=0.1\n", split.base.size(),
              split.queries.size(), full.dim());

  const float* probe_query = split.queries.point(0);
  const core::CostModel model = bench::CalibratedModel(
      [&](size_t i) {
        return data::CosineDistance(split.base.point(i), probe_query,
                                    split.base.dim());
      },
      std::min<size_t>(10000, split.base.size()), split.base.size(),
      /*paper_ratio=*/10.0);
  // In this C++ implementation a 254-dim cosine distance costs far more
  // than one dedup probe (measured ratio above), so under *measured* costs
  // classic LSH keeps beating linear on this workload and the hybrid
  // correctly routes almost everything to LSH. To also reproduce the
  // decision dynamics of the paper's Python implementation (beta/alpha =
  // 10, where dedup is relatively expensive), a second block re-runs the
  // sweep with the paper's pinned ratio.
  struct Row {
    double radius;
    bench::StrategyResult measured;
    bench::StrategyResult paper_model;
  };
  std::vector<Row> rows;
  for (double radius : {0.05, 0.06, 0.07, 0.08, 0.09, 0.10}) {
    CosineIndex::Options options;
    options.num_tables = 50;
    options.delta = 0.1;
    options.radius = radius;
    options.seed = 213;
    options.num_build_threads = 16;
    // Sketch buckets of >= 16 ids: bounds the query-time folding of
    // sketch-less buckets (see DESIGN.md ablation A4) at modest space cost.
    options.small_bucket_threshold = 16;
    auto index = CosineIndex::Build(lsh::SimHashFamily(full.dim()), split.base,
                                    options);
    HLSH_CHECK(index.ok());

    const auto truth = data::GroundTruthDense(split.base, split.queries, radius,
                                              data::Metric::kCosine, 16);
    Row row;
    row.radius = radius;
    row.measured = bench::RunStrategies(*index, split.base, split.queries,
                                        radius, model, truth, scale.runs);
    row.paper_model = bench::RunStrategies(*index, split.base, split.queries,
                                           radius, core::CostModel::FromRatio(10.0),
                                           truth, scale.runs);
    rows.push_back(row);
  }

  std::printf("#\n# --- measured cost model ---\n");
  bench::PrintFig2Header();
  for (const Row& row : rows) bench::PrintFig2Row(row.radius, row.measured);

  std::printf("#\n# --- paper cost-model emulation (beta/alpha = 10) ---\n");
  bench::PrintFig2Header();
  for (const Row& row : rows) bench::PrintFig2Row(row.radius, row.paper_model);
  return 0;
}
