// Ablation A6: covering LSH + hybrid search (paper §5's second "future
// work" integration) against classic bit-sampling LSH at equal probe work.
//
// Covering LSH guarantees zero false negatives for Hamming distance <= r
// using 2^(r+1) - 1 correlated tables. With per-bucket HLLs it plugs into
// the same hybrid machinery, yielding an *exact* rNNR structure whose
// hard queries still fall back to (equally exact) linear scan. This bench
// compares, at matched table counts: recall (covering must be 1.0), query
// time, and memory.

#include "bench_common.h"

using namespace hybridlsh;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Ablation A6: covering LSH vs classic LSH (64-bit codes)\n");
  bench::PrintScaleNote(scale);

  const data::DenseDataset pixels =
      data::MakeMnistLike(scale.N(60000, 2), 780, 10, 201);
  const lsh::Fingerprinter fingerprinter(780, 64, 202);
  auto codes = fingerprinter.Transform(pixels);
  HLSH_CHECK(codes.ok());
  const data::BinarySplit split =
      data::SplitQueriesBinary(*codes, scale.num_queries, 203);

  const uint64_t* probe = split.queries.point(0);
  const core::CostModel model = bench::CalibratedModel(
      [&](size_t i) {
        return static_cast<double>(
            data::HammingDistance(split.base.point(i), probe, 1));
      },
      std::min<size_t>(10000, split.base.size()), split.base.size(), 1.0);

  std::printf("# %-7s %-10s %-8s %-12s %-10s %-12s %-8s\n", "radius", "scheme",
              "tables", "time_s", "recall", "memory_MiB", "%LS");
  for (uint32_t radius : {4u, 5u, 6u}) {
    const auto truth =
        data::GroundTruthBinary(split.base, split.queries, radius, 16);

    // Covering LSH: 2^(r+1)-1 tables, deterministic guarantee.
    {
      lsh::CoveringLshIndex::Options options;
      options.radius = radius;
      options.seed = 204;
      options.num_build_threads = 16;
      options.small_bucket_threshold = 16;
      auto index = lsh::CoveringLshIndex::Build(split.base, options);
      HLSH_CHECK(index.ok());

      const auto result = bench::RunStrategies(*index, split.base,
                                               split.queries, radius, model,
                                               truth, scale.runs);
      std::printf("  %-7u %-10s %-8d %-12.5f %-10.3f %-12.2f %-8.1f\n", radius,
                  "covering", index->num_tables(), result.hybrid_seconds,
                  result.hybrid_recall,
                  static_cast<double>(index->MemoryBytes()) / (1024.0 * 1024.0),
                  result.pct_linear_calls);
    }

    // Classic bit sampling with the same number of tables.
    {
      HammingIndex::Options options;
      options.num_tables = (1 << (radius + 1)) - 1;
      options.delta = 0.1;
      options.radius = radius;
      options.seed = 205;
      options.num_build_threads = 16;
      options.small_bucket_threshold = 16;
      auto index =
          HammingIndex::Build(lsh::BitSamplingFamily(64), split.base, options);
      HLSH_CHECK(index.ok());

      const auto result = bench::RunStrategies(*index, split.base,
                                               split.queries, radius, model,
                                               truth, scale.runs);
      std::printf("  %-7u %-10s %-8d %-12.5f %-10.3f %-12.2f %-8.1f\n", radius,
                  "classic", index->num_tables(), result.hybrid_seconds,
                  result.hybrid_recall,
                  static_cast<double>(index->stats().memory_bytes) /
                      (1024.0 * 1024.0),
                  result.pct_linear_calls);
    }
  }
  std::printf("#\n# Expectation: covering recall = 1.000 exactly at every\n"
              "# radius (classic < 1); comparable table counts and times.\n");
  return 0;
}
