// Ablation A5: HyperLogLog vs KMV at equal memory for candSize estimation.
//
// The paper picks HLL because it is near-optimal for a fixed memory budget
// (§2). This bench pits HLL against the bottom-k (KMV) sketch at matched
// byte budgets on the exact access pattern the hybrid search uses: many
// per-partition sketches merged at query time, cardinalities spanning 10^2
// to 10^6 with heavy overlap between partitions.

#include "bench_common.h"
#include "hll/kmv.h"
#include "util/random.h"

using namespace hybridlsh;

namespace {

struct Accuracy {
  double mean_rel_err = 0;
  double max_rel_err = 0;
};

// Streams `cardinality` ids split across 50 partitions with ~50% overlap
// (each id lands in 1 + Binomial extra partitions), sketches each
// partition, merges, estimates.
template <typename Sketch, typename Make>
Accuracy MeasureSketch(const Make& make, uint32_t cardinality, int trials) {
  Accuracy acc;
  for (int t = 0; t < trials; ++t) {
    util::Rng rng(1000 + t * 7919 + cardinality);
    std::vector<Sketch> partitions;
    for (int p = 0; p < 50; ++p) partitions.push_back(make());
    for (uint32_t id = 0; id < cardinality; ++id) {
      const uint64_t hash = rng.NextU64();
      // Duplicate the element into a few partitions, as LSH buckets do.
      const int copies = 1 + static_cast<int>(rng.UniformInt(0, 2));
      for (int c = 0; c < copies; ++c) {
        partitions[static_cast<size_t>(rng.UniformInt(0, 49))].AddHash(hash);
      }
    }
    Sketch merged = make();
    for (const Sketch& p : partitions) HLSH_CHECK(merged.Merge(p).ok());
    const double rel_err =
        std::abs(merged.Estimate() - cardinality) / cardinality;
    acc.mean_rel_err += rel_err;
    acc.max_rel_err = std::max(acc.max_rel_err, rel_err);
  }
  acc.mean_rel_err /= trials;
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Ablation A5: HLL vs KMV at equal bytes (50 partitions "
              "merged, duplicated ids)\n");
  bench::PrintScaleNote(scale);
  const int trials = scale.full ? 20 : 8;

  // Matched budgets: HLL precision b uses 2^b bytes; KMV with k = 2^b / 8
  // retained hashes uses the same.
  std::printf("# %-8s %-12s %-14s %-12s %-14s %-12s\n", "bytes",
              "cardinality", "hll_err%", "hll_max%", "kmv_err%", "kmv_max%");
  for (int precision : {5, 7, 9}) {
    const size_t bytes = size_t{1} << precision;
    const size_t kmv_k = std::max<size_t>(3, bytes / sizeof(uint64_t));
    for (uint32_t cardinality : {1000u, 20000u, 400000u}) {
      const Accuracy hll_acc = MeasureSketch<hll::HyperLogLog>(
          [&] { return hll::HyperLogLog(precision); }, cardinality, trials);
      const Accuracy kmv_acc = MeasureSketch<hll::KmvSketch>(
          [&] { return hll::KmvSketch(kmv_k); }, cardinality, trials);
      std::printf("  %-8zu %-12u %-14.2f %-12.2f %-14.2f %-12.2f\n", bytes,
                  cardinality, 100.0 * hll_acc.mean_rel_err,
                  100.0 * hll_acc.max_rel_err, 100.0 * kmv_acc.mean_rel_err,
                  100.0 * kmv_acc.max_rel_err);
    }
  }
  std::printf(
      "#\n# Expectation: at equal bytes HLL's error (1.04/sqrt(bytes)) beats\n"
      "# KMV's (~1/sqrt(bytes/8 - 2)) by ~2.6x — the reason the paper\n"
      "# integrates HLL rather than a bottom-k sketch.\n");
  return 0;
}
