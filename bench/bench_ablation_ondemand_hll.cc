// Ablation A4: the paper's small-bucket trick (§3.2) — "For small buckets
// (#points < m), we might not need HLL, since we can update the merged HLL
// on demand at the query time."
//
// The threshold trades space (m bytes per sketched bucket) against query
// time (one hash per id folded on demand from sketch-less buckets). This
// sweep measures both ends plus the middle on the Corel-like workload,
// where mid-sized buckets dominate and the fold is most visible.

#include "bench_common.h"

using namespace hybridlsh;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Ablation A4: small-bucket sketch threshold "
              "(Corel-like L2, r=0.45, m=128)\n");
  bench::PrintScaleNote(scale);

  const data::DenseDataset full =
      data::MakeCorelLike(scale.N(68040, 4), 32, 231);
  const data::DenseSplit split =
      data::SplitQueries(full, scale.num_queries, 232);
  const double radius = 0.45;

  const float* probe = split.queries.point(0);
  const core::CostModel model = bench::CalibratedModel(
      [&](size_t i) {
        return data::L2Distance(split.base.point(i), probe, 32);
      },
      std::min<size_t>(10000, split.base.size()), split.base.size(), 6.0);

  struct Threshold {
    size_t value;
    const char* label;
  };
  const Threshold thresholds[] = {
      {0, "0 (always)"},   {16, "16"},        {32, "32 (m/4)"},
      {128, "128 (m)"},    {1024, "1024"},    {SIZE_MAX - 1, "never"},
  };

  std::printf("# %-12s %-10s %-12s %-14s %-12s\n", "threshold", "sketches",
              "sketch_MiB", "est_us/query", "hybrid_s");
  for (const Threshold& threshold : thresholds) {
    L2Index::Options options;
    options.num_tables = 50;
    options.k = 7;
    options.seed = 233;
    options.num_build_threads = 16;
    options.small_bucket_threshold = threshold.value;
    auto index = L2Index::Build(lsh::PStableFamily::L2(32, 2 * radius),
                                split.base, options);
    HLSH_CHECK(index.ok());

    const auto result = bench::RunStrategies(*index, split.base, split.queries,
                                             radius, model, {}, 1);
    std::printf("  %-12s %-10zu %-12.3f %-14.2f %-12.5f\n", threshold.label,
                index->stats().total_sketches,
                static_cast<double>(index->stats().sketch_bytes) /
                    (1024.0 * 1024.0),
                1e6 * result.estimate_seconds /
                    static_cast<double>(split.queries.size()),
                result.hybrid_seconds);
  }
  std::printf(
      "#\n# Expectation: threshold 0 maximizes space and minimizes the\n"
      "# estimation time; 'never' stores nothing but folds every collision\n"
      "# at query time; the paper's m and our benches' 16 sit between.\n");
  return 0;
}
