// Figure 2(c): CPU time vs radius on CoverType with L1 distance.
//
// Paper setup (§4): CoverType (n = 581,012, d = 54), Cauchy (1-stable)
// projections with k = 8 and w = 4r, L = 50, radii 3000..4000,
// beta/alpha = 10. Paper shape: LSH and hybrid beat linear at 3000; LSH
// deteriorates with r and the hybrid tracks the per-query winner.
//
// Dataset substitution: MakeCovtypeLike — heavy-tailed Gaussian mixture
// with integer-scale features; see DESIGN.md §2.

#include "bench_common.h"

using namespace hybridlsh;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Figure 2(c): CoverType-like, L1 distance via 1-stable "
              "projections (k=8, w=4r)\n");
  bench::PrintScaleNote(scale);

  const data::DenseDataset full =
      data::MakeCovtypeLike(scale.N(581012), 54, /*seed=*/221);
  const data::DenseSplit split =
      data::SplitQueries(full, scale.num_queries, /*seed=*/222);
  std::printf("# n=%zu queries=%zu d=54 L=50 k=8 beta/alpha=10\n",
              split.base.size(), split.queries.size());

  const float* probe_query = split.queries.point(0);
  const core::CostModel model = bench::CalibratedModel(
      [&](size_t i) {
        return data::L1Distance(split.base.point(i), probe_query,
                                split.base.dim());
      },
      std::min<size_t>(10000, split.base.size()), split.base.size(),
      /*paper_ratio=*/10.0);
  bench::PrintFig2Header();
  for (double radius : {3000.0, 3200.0, 3400.0, 3600.0, 3800.0, 4000.0}) {
    L1Index::Options options;
    options.num_tables = 50;
    options.k = 8;  // paper's pinned setting
    options.seed = 223;
    options.num_build_threads = 16;
    // Sketch buckets of >= 16 ids: bounds the query-time folding of
    // sketch-less buckets (see DESIGN.md ablation A4) at modest space cost.
    options.small_bucket_threshold = 16;
    auto index = L1Index::Build(lsh::PStableFamily::L1(54, 4 * radius),
                                split.base, options);
    HLSH_CHECK(index.ok());

    const auto truth = data::GroundTruthDense(split.base, split.queries, radius,
                                              data::Metric::kL1, 16);
    const auto result = bench::RunStrategies(*index, split.base, split.queries,
                                             radius, model, truth, scale.runs);
    bench::PrintFig2Row(radius, result);
  }
  return 0;
}
