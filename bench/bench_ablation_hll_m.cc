// Ablation A1: HLL precision m vs estimate quality and overhead.
//
// The paper fixes m = 128 ("relative error at most 10%") and notes that
// MNIST could drop to m = 32 to cut the estimation cost from 17.54% to
// ~4.4% of query time "without degrading the performance". This sweep
// quantifies that trade-off: per-bucket sketch precision against (a) the
// candSize estimate's relative error, (b) the estimation share of hybrid
// query time, and (c) sketch memory.

#include "bench_common.h"

using namespace hybridlsh;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Ablation A1: HLL precision sweep (Corel-like L2 workload)\n");
  bench::PrintScaleNote(scale);

  const data::DenseDataset full =
      data::MakeCorelLike(scale.N(68040, 4), 32, 231);
  const data::DenseSplit split =
      data::SplitQueries(full, scale.num_queries, 232);
  const double radius = 0.45;

  const float* probe = split.queries.point(0);
  const core::CostModel model = bench::CalibratedModel(
      [&](size_t i) {
        return data::L2Distance(split.base.point(i), probe, 32);
      },
      std::min<size_t>(10000, split.base.size()), split.base.size(), 6.0);

  const auto truth = data::GroundTruthDense(split.base, split.queries, radius,
                                            data::Metric::kL2, 16);

  std::printf("# %-4s %-6s %-12s %-10s %-10s %-12s %-12s\n", "b", "m",
              "theory_se%", "err%", "err_sd%", "est_s/query", "sketch_MiB");
  for (int precision : {4, 5, 6, 7, 8, 10}) {
    L2Index::Options options;
    options.num_tables = 50;
    options.k = 7;
    options.seed = 233;
    options.num_build_threads = 16;
    options.hll_precision = precision;
    options.small_bucket_threshold = 16;
    auto index = L2Index::Build(lsh::PStableFamily::L2(32, 2 * radius),
                                split.base, options);
    HLSH_CHECK(index.ok());

    const auto result = bench::RunStrategies(*index, split.base, split.queries,
                                             radius, model, truth, 1);
    const double m = static_cast<double>(size_t{1} << precision);
    std::printf("  %-4d %-6.0f %-12.2f %-10.2f %-10.2f %-12.3g %-12.3f\n",
                precision, m, 100.0 * 1.04 / std::sqrt(m),
                100.0 * result.mean_cand_rel_error,
                100.0 * result.sd_cand_rel_error,
                result.estimate_seconds /
                    static_cast<double>(split.queries.size()),
                static_cast<double>(index->stats().sketch_bytes) /
                    (1024.0 * 1024.0));
  }
  std::printf("#\n# Expectation: err%% tracks ~1.04/sqrt(m); estimation time\n"
              "# and sketch memory grow with m — m = 32..128 is the paper's\n"
              "# sweet spot.\n");
  return 0;
}
