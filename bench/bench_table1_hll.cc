// Table 1: relative cost and error of the per-bucket HyperLogLogs.
//
// Paper setup (§4.1): m = 128 registers (relative error <= 10%), L = 50,
// k by the delta = 0.1 rule, measured "for a small range of radii where
// LSH-based search significantly outperforms linear search".
//
//   %Cost  = time spent merging HLLs + estimating candSize, as a share of
//            total query time;
//   %Error = relative error of the candSize estimate vs the exact distinct
//            candidate count.
//
// Paper values:  Webspam 1.31 / 5.99,  CoverType 0.12 / 5.86,
//                Corel 3.18 / 6.74,    MNIST 17.54 / 6.80   (%Cost/%Error).

#include "bench_common.h"

using namespace hybridlsh;

namespace {

struct Table1Row {
  const char* dataset;
  double paper_cost_pct;
  double paper_error_pct;
  double cost_pct;
  double error_pct;
  double error_sd_pct;
};

void PrintRow(const Table1Row& row) {
  std::printf("  %-10s %-12.2f %-10.2f %-12.2f %-10.2f %-10.2f\n", row.dataset,
              row.paper_cost_pct, row.cost_pct, row.paper_error_pct,
              row.error_pct, row.error_sd_pct);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Table 1: relative cost and error of HLLs (m=128, L=50)\n");
  bench::PrintScaleNote(scale);
  std::printf("# %-10s %-12s %-10s %-12s %-10s %-10s\n", "dataset",
              "paper_cost%", "our_cost%", "paper_err%", "our_err%", "err_sd%");

  // --- Webspam-like, cosine, r = 0.05 ---------------------------------------
  {
    data::WebspamLikeConfig config;
    config.n = scale.N(350000);
    config.dim = 254;
    config.cluster_fraction = 0.55;
    config.eps_min = 0.02;
    config.eps_max = 0.40;
    config.seed = 211;
    const data::DenseDataset full = data::MakeWebspamLike(config);
    const data::DenseSplit split =
        data::SplitQueries(full, scale.num_queries, 212);
    const double radius = 0.05;
    CosineIndex::Options options;
    options.num_tables = 50;
    options.delta = 0.1;
    options.radius = radius;
    options.seed = 213;
    options.num_build_threads = 16;
    // Sketch buckets of >= 16 ids: bounds the query-time folding of
    // sketch-less buckets (see DESIGN.md ablation A4) at modest space cost.
    options.small_bucket_threshold = 16;
    auto index =
        CosineIndex::Build(lsh::SimHashFamily(254), split.base, options);
    HLSH_CHECK(index.ok());
    const float* probe = split.queries.point(0);
    const core::CostModel model = bench::CalibratedModel(
        [&](size_t i) {
          return data::CosineDistance(split.base.point(i), probe, 254);
        },
        std::min<size_t>(10000, split.base.size()), split.base.size(), 10.0);
    const auto result = bench::RunStrategies(*index, split.base, split.queries,
                                             radius, model, {}, scale.runs);
    PrintRow({"Webspam", 1.31, 5.99,
              100.0 * result.estimate_seconds / result.hybrid_seconds,
              100.0 * result.mean_cand_rel_error,
              100.0 * result.sd_cand_rel_error});
  }

  // --- CoverType-like, L1, r = 3000 ------------------------------------------
  {
    const data::DenseDataset full =
        data::MakeCovtypeLike(scale.N(581012), 54, 221);
    const data::DenseSplit split =
        data::SplitQueries(full, scale.num_queries, 222);
    const double radius = 3000;
    L1Index::Options options;
    options.num_tables = 50;
    options.k = 8;
    options.seed = 223;
    options.num_build_threads = 16;
    // Sketch buckets of >= 16 ids: bounds the query-time folding of
    // sketch-less buckets (see DESIGN.md ablation A4) at modest space cost.
    options.small_bucket_threshold = 16;
    auto index = L1Index::Build(lsh::PStableFamily::L1(54, 4 * radius),
                                split.base, options);
    HLSH_CHECK(index.ok());
    const float* probe = split.queries.point(0);
    const core::CostModel model = bench::CalibratedModel(
        [&](size_t i) {
          return data::L1Distance(split.base.point(i), probe, 54);
        },
        std::min<size_t>(10000, split.base.size()), split.base.size(), 10.0);
    const auto result = bench::RunStrategies(*index, split.base, split.queries,
                                             radius, model, {}, scale.runs);
    PrintRow({"CoverType", 0.12, 5.86,
              100.0 * result.estimate_seconds / result.hybrid_seconds,
              100.0 * result.mean_cand_rel_error,
              100.0 * result.sd_cand_rel_error});
  }

  // --- Corel-like, L2, r = 0.35 ----------------------------------------------
  {
    const data::DenseDataset full =
        data::MakeCorelLike(scale.N(68040, 4), 32, 231);
    const data::DenseSplit split =
        data::SplitQueries(full, scale.num_queries, 232);
    const double radius = 0.35;
    L2Index::Options options;
    options.num_tables = 50;
    options.k = 7;
    options.seed = 233;
    options.num_build_threads = 16;
    // Sketch buckets of >= 16 ids: bounds the query-time folding of
    // sketch-less buckets (see DESIGN.md ablation A4) at modest space cost.
    options.small_bucket_threshold = 16;
    auto index = L2Index::Build(lsh::PStableFamily::L2(32, 2 * radius),
                                split.base, options);
    HLSH_CHECK(index.ok());
    const float* probe = split.queries.point(0);
    const core::CostModel model = bench::CalibratedModel(
        [&](size_t i) {
          return data::L2Distance(split.base.point(i), probe, 32);
        },
        std::min<size_t>(10000, split.base.size()), split.base.size(), 6.0);
    const auto result = bench::RunStrategies(*index, split.base, split.queries,
                                             radius, model, {}, scale.runs);
    PrintRow({"Corel", 3.18, 6.74,
              100.0 * result.estimate_seconds / result.hybrid_seconds,
              100.0 * result.mean_cand_rel_error,
              100.0 * result.sd_cand_rel_error});
  }

  // --- MNIST-like fingerprints, Hamming, r = 12 -------------------------------
  {
    const data::DenseDataset pixels =
        data::MakeMnistLike(scale.N(60000, 2), 780, 10, 201);
    const lsh::Fingerprinter fingerprinter(780, 64, 202);
    auto codes = fingerprinter.Transform(pixels);
    HLSH_CHECK(codes.ok());
    const data::BinarySplit split =
        data::SplitQueriesBinary(*codes, scale.num_queries, 203);
    const uint32_t radius = 12;
    HammingIndex::Options options;
    options.num_tables = 50;
    options.delta = 0.1;
    options.radius = radius;
    options.seed = 204;
    options.num_build_threads = 16;
    // Sketch buckets of >= 16 ids: bounds the query-time folding of
    // sketch-less buckets (see DESIGN.md ablation A4) at modest space cost.
    options.small_bucket_threshold = 16;
    auto index =
        HammingIndex::Build(lsh::BitSamplingFamily(64), split.base, options);
    HLSH_CHECK(index.ok());
    const uint64_t* probe = split.queries.point(0);
    const core::CostModel model = bench::CalibratedModel(
        [&](size_t i) {
          return static_cast<double>(
              data::HammingDistance(split.base.point(i), probe, 1));
        },
        std::min<size_t>(10000, split.base.size()), split.base.size(), 1.0);
    const auto result = bench::RunStrategies(*index, split.base, split.queries,
                                             radius, model, {}, scale.runs);
    PrintRow({"MNIST", 17.54, 6.80,
              100.0 * result.estimate_seconds / result.hybrid_seconds,
              100.0 * result.mean_cand_rel_error,
              100.0 * result.sd_cand_rel_error});
  }

  std::printf(
      "#\n# Expectation (paper §4.1): %%cost small (< ~5%%) for real-valued\n"
      "# data, larger for MNIST's cheap popcount distances; %%error well\n"
      "# under the 10%% bound for m = 128 (paper sees ~6-7%%).\n");
  return 0;
}
