// Ablation A2: sensitivity of the hybrid decision to the beta/alpha ratio.
//
// The decision (Eq. 1 vs Eq. 2) depends only on the ratio beta/alpha. The
// paper calibrates it per dataset (§4.2). This sweep shows what happens
// when the ratio is wrong: hybrid time and the %LS mix across a spread of
// pinned ratios, against the measured ratio and an oracle that runs both
// pure strategies and keeps the faster (per query set, the lower
// envelope). A good ratio keeps hybrid within a few percent of the oracle.

#include "bench_common.h"

using namespace hybridlsh;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Ablation A2: beta/alpha sensitivity (Webspam-like cosine "
              "workload, r=0.08)\n");
  bench::PrintScaleNote(scale);

  data::WebspamLikeConfig config;
  config.n = scale.N(350000);
  config.dim = 254;
  config.cluster_fraction = 0.55;
  config.eps_min = 0.02;
  config.eps_max = 0.40;
  config.seed = 211;
  const data::DenseDataset full = data::MakeWebspamLike(config);
  const data::DenseSplit split =
      data::SplitQueries(full, scale.num_queries, 212);
  const double radius = 0.08;

  CosineIndex::Options options;
  options.num_tables = 50;
  options.delta = 0.1;
  options.radius = radius;
  options.seed = 213;
  options.num_build_threads = 16;
  options.small_bucket_threshold = 16;
  auto index =
      CosineIndex::Build(lsh::SimHashFamily(full.dim()), split.base, options);
  HLSH_CHECK(index.ok());

  const float* probe = split.queries.point(0);
  const auto calibrated = core::CostCalibrator::Calibrate(
      [&](size_t i) {
        return data::CosineDistance(split.base.point(i), probe, 254);
      },
      split.base.size(), /*sample_size=*/10000, split.base.size());
  HLSH_CHECK(calibrated.ok());
  const core::CostModel measured = *calibrated;
  std::printf("# measured beta/alpha = %.1f\n", measured.Ratio());

  std::printf("# %-10s %-12s %-12s %-12s %-8s\n", "ratio", "hybrid_s",
              "oracle_s", "regret%", "%LS");
  auto run_ratio = [&](double ratio, const char* label) {
    const auto result = bench::RunStrategies(
        *index, split.base, split.queries, radius,
        core::CostModel::FromRatio(ratio), {}, 1);
    const double oracle = std::min(result.lsh_seconds, result.linear_seconds);
    std::printf("  %-10s %-12.5f %-12.5f %-12.1f %-8.1f\n", label,
                result.hybrid_seconds, oracle,
                100.0 * (result.hybrid_seconds - oracle) / oracle,
                result.pct_linear_calls);
  };
  for (double ratio : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", ratio);
    run_ratio(ratio, label);
  }
  {
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f*", measured.Ratio());
    run_ratio(measured.Ratio(), label);
  }
  std::printf("#\n# (* = measured). Expectation: tiny ratios overprice\n"
              "# distance computations and push easy queries to linear\n"
              "# (regret up); the measured ratio stays near the oracle.\n");
  return 0;
}
