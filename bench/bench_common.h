// Shared support for the paper-reproduction benchmark binaries.
//
// Every bench binary runs with no arguments at a scaled-down (but
// shape-preserving) size so that `for b in build/bench/*; do $b; done`
// finishes quickly; pass --full (or set HYBRIDLSH_FULL=1) for the paper's
// dataset sizes (n up to 581,012, 100 queries, averaged over runs).
//
// Output format: one comment header describing the paper artifact, then
// whitespace-aligned columns, one row per sweep point — the same series
// the paper's tables/figures report, plus recall columns the paper omits
// for space.

#ifndef HYBRIDLSH_BENCH_BENCH_COMMON_H_
#define HYBRIDLSH_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/hybridlsh.h"
#include "util/stats.h"
#include "util/timer.h"

namespace hybridlsh {
namespace bench {

/// Scaling knobs resolved from argv / environment.
struct BenchScale {
  bool full = false;
  /// Number of held-out queries (paper: 100).
  size_t num_queries = 40;
  /// Repetitions of the query set, averaged (paper: 5).
  int runs = 1;

  /// Scales a paper-sized n down in quick mode. Small datasets use a
  /// gentler divisor so timings stay measurable.
  size_t N(size_t paper_n, size_t quick_divisor = 8) const {
    return full ? paper_n : paper_n / quick_divisor;
  }
};

inline BenchScale GetScale(int argc, char** argv) {
  BenchScale scale;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) scale.full = true;
  }
  const char* env = std::getenv("HYBRIDLSH_FULL");
  if (env != nullptr && env[0] == '1') scale.full = true;
  if (scale.full) {
    scale.num_queries = 100;
    scale.runs = 3;
  }
  return scale;
}

inline void PrintScaleNote(const BenchScale& scale) {
  std::printf("# mode: %s (queries=%zu, runs=%d)%s\n",
              scale.full ? "FULL (paper-sized)" : "QUICK (n/8)",
              scale.num_queries, scale.runs,
              scale.full ? "" : " — pass --full for paper-sized datasets");
}

/// Timing + quality of the three strategies over one query set.
struct StrategyResult {
  double hybrid_seconds = 0;  // total CPU seconds for the whole query set
  double lsh_seconds = 0;
  double linear_seconds = 0;
  double hybrid_recall = 0;  // averaged per query
  double lsh_recall = 0;
  double pct_linear_calls = 0;  // % of hybrid queries answered by scan
  // Table 1 ingredients (collected on the hybrid pass).
  double estimate_seconds = 0;     // HLL merge+estimate time (all queries)
  double mean_cand_rel_error = 0;  // |candEst - candActual| / candActual
  double sd_cand_rel_error = 0;
  // Figure 3 (left) ingredients.
  double avg_output = 0;
  size_t min_output = 0;
  size_t max_output = 0;
};

/// Runs hybrid, forced-LSH and forced-linear passes over the query set,
/// `runs` times, and aggregates. Ground truth may be empty (skips recall).
template <typename Index, typename Dataset, typename QuerySet>
StrategyResult RunStrategies(const Index& index, const Dataset& base,
                             const QuerySet& queries, double radius,
                             const core::CostModel& model,
                             const std::vector<std::vector<uint32_t>>& truth,
                             int runs) {
  StrategyResult result;
  core::SearcherOptions hybrid_options;
  hybrid_options.cost_model = model;
  core::SearcherOptions lsh_options = hybrid_options;
  lsh_options.forced = core::ForcedStrategy::kAlwaysLsh;
  core::SearcherOptions linear_options = hybrid_options;
  linear_options.forced = core::ForcedStrategy::kAlwaysLinear;

  core::HybridSearcher<Index, Dataset> hybrid(&index, &base, hybrid_options);
  core::HybridSearcher<Index, Dataset> lsh(&index, &base, lsh_options);
  core::HybridSearcher<Index, Dataset> linear(&index, &base, linear_options);

  const size_t num_queries = queries.size();
  std::vector<uint32_t> out;
  core::QueryStats stats;

  // Timed passes contain NOTHING but the queries. Wall-clock timing:
  // query execution is single-threaded, so wall time equals CPU time (the
  // paper's axis) — and the wall clock has nanosecond granularity where
  // this kernel's process-CPU clock only has 10 ms.
  for (int run = 0; run < runs; ++run) {
    {
      util::WallTimer timer;
      for (size_t q = 0; q < num_queries; ++q) {
        out.clear();
        hybrid.Query(queries.point(q), radius, &out);
      }
      result.hybrid_seconds += timer.ElapsedSeconds();
    }
    {
      util::WallTimer timer;
      for (size_t q = 0; q < num_queries; ++q) {
        out.clear();
        lsh.Query(queries.point(q), radius, &out);
      }
      result.lsh_seconds += timer.ElapsedSeconds();
    }
    {
      util::WallTimer timer;
      for (size_t q = 0; q < num_queries; ++q) {
        out.clear();
        linear.Query(queries.point(q), radius, &out);
      }
      result.linear_seconds += timer.ElapsedSeconds();
    }
  }
  result.hybrid_seconds /= runs;
  result.lsh_seconds /= runs;
  result.linear_seconds /= runs;

  // Untimed instrumentation pass: recalls, strategy mix, estimate accuracy
  // and overhead, output-size spread.
  util::RunningStat cand_err;
  util::RunningStat output_sizes;
  size_t linear_calls = 0;
  for (size_t q = 0; q < num_queries; ++q) {
    out.clear();
    hybrid.Query(queries.point(q), radius, &out, &stats);
    result.estimate_seconds += stats.estimate_seconds;
    linear_calls += (stats.strategy == core::Strategy::kLinear);
    output_sizes.Add(static_cast<double>(out.size()));
    if (!truth.empty()) result.hybrid_recall += data::Recall(out, truth[q]);
    if (stats.strategy == core::Strategy::kLsh && stats.cand_actual > 0) {
      cand_err.Add(std::abs(stats.cand_estimate -
                            static_cast<double>(stats.cand_actual)) /
                   static_cast<double>(stats.cand_actual));
    }
    if (!truth.empty()) {
      out.clear();
      lsh.Query(queries.point(q), radius, &out);
      result.lsh_recall += data::Recall(out, truth[q]);
    }
  }
  if (!truth.empty()) {
    result.hybrid_recall /= static_cast<double>(num_queries);
    result.lsh_recall /= static_cast<double>(num_queries);
  }
  result.pct_linear_calls = 100.0 * static_cast<double>(linear_calls) /
                            static_cast<double>(num_queries);
  result.mean_cand_rel_error = cand_err.count() > 0 ? cand_err.mean() : 0.0;
  result.sd_cand_rel_error = cand_err.count() > 1 ? cand_err.stddev() : 0.0;
  result.avg_output = output_sizes.mean();
  result.min_output = static_cast<size_t>(output_sizes.min());
  result.max_output = static_cast<size_t>(output_sizes.max());
  return result;
}

/// Calibrates the cost model the way the paper does (§4.2: "We use a
/// random set of 100 queries and 10,000 data points for choosing the ratio
/// beta/alpha"), on THIS implementation and machine. `distance_fn(i)` must
/// compute one representative distance against sample point i. The paper's
/// pinned ratios (10, 10, 6, 1) came from its Python implementation; the
/// benches print both.
inline core::CostModel CalibratedModel(
    const std::function<double(size_t)>& distance_fn, size_t sample_size,
    size_t dedup_capacity, double paper_ratio) {
  // The benches hand a sample_size already bounded by their dataset, so it
  // doubles as the callback's valid range n.
  auto calibrated = core::CostCalibrator::Calibrate(
      distance_fn, /*n=*/sample_size, sample_size, dedup_capacity,
      /*ops=*/200000, /*seed=*/1);
  HLSH_CHECK(calibrated.ok());
  const core::CostModel measured = *calibrated;
  std::printf("# cost model: measured beta/alpha = %.1f "
              "(paper's Python implementation used %.0f)\n",
              measured.Ratio(), paper_ratio);
  return measured;
}

/// Header + row printers for the Figure 2 CPU-time sweeps.
inline void PrintFig2Header() {
  std::printf("# %-9s %-12s %-12s %-12s %-9s %-9s %-8s\n", "radius",
              "hybrid_s", "lsh_s", "linear_s", "rec_hyb", "rec_lsh", "%LS");
}

inline void PrintFig2Row(double radius, const StrategyResult& r) {
  std::printf("  %-9.4g %-12.5f %-12.5f %-12.5f %-9.3f %-9.3f %-8.1f\n", radius,
              r.hybrid_seconds, r.lsh_seconds, r.linear_seconds,
              r.hybrid_recall, r.lsh_recall, r.pct_linear_calls);
}

/// One-line qualitative check for the figure shape: who wins at this row.
inline const char* Winner(const StrategyResult& r) {
  const double h = r.hybrid_seconds, l = r.lsh_seconds, n = r.linear_seconds;
  if (h <= l && h <= n) return "hybrid";
  return l <= n ? "lsh" : "linear";
}

}  // namespace bench
}  // namespace hybridlsh

#endif  // HYBRIDLSH_BENCH_BENCH_COMMON_H_
