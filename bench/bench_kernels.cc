// Kernel-subsystem microbench: ns/distance per metric per SIMD tier, HLL
// register-op latency, and block-batched verification throughput against
// the old per-id scalar baseline.
//
// One JSON object per line (comment lines carry context), the repo's
// machine-readable bench format. Three row kinds:
//
//   {"bench":"kernels","kind":"distance","kernel":"l2sq","tier":"avx2",
//    "dim":64,"ns_per_distance":3.1}
//   {"bench":"kernels","kind":"projection","form":"blocked","tier":"avx2",
//    "dim":64,"k":16,"ns_per_signature":120.0,
//    "speedup_vs_scalar_single":5.1}
//   {"bench":"kernels","kind":"hll","op":"merge","tier":"avx2",
//    "precision":7,"ns_per_op":9.8}
//   {"bench":"kernels","kind":"verify","metric":"L2","tier":"avx2",
//    "dim":64,"ids":20000,"mcand_per_sec":311.2,
//    "speedup_vs_per_id_scalar":4.7}
//   {"bench":"kernels","kind":"verify_quantized","metric":"L2","tier":"avx2",
//    "dim":64,"ids":20000,"mcand_per_sec":620.0,
//    "speedup_vs_float_block":2.1,"borderline_pct":0.4}
//
// The verify baseline ("tier":"per_id_scalar") re-creates the pre-kernel
// hot path: one data/metric.h call per candidate, no blocking, no
// prefetch, sqrt per L2 candidate. The committed BENCH_kernels.json tracks
// these rows; the CI smoke job just checks the binary runs.

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/kernels.h"
#include "util/simd.h"

using namespace hybridlsh;

namespace {

constexpr size_t kDim = 64;

/// Tiers the bench machine supports, scalar first (util/simd.h).
std::vector<util::simd::Tier> SupportedTiers() {
  return util::simd::SupportedTiers();
}

/// Keeps results observable so the kernel calls cannot be optimized away.
volatile float g_sink_f = 0;
volatile double g_sink_d = 0;
volatile uint32_t g_sink_u = 0;

/// Times `fn` with one untimed warm-up call followed by `runs` timed calls
/// and returns the MEDIAN elapsed seconds. The warm-up pulls the touched
/// pages into cache and absorbs the first-run frequency ramp; the median
/// drops the stray slow run that a mean would fold in. Both matter: the
/// committed BENCH_kernels.json is a 30%-threshold CI regression gate, and
/// without them whichever path runs first pre-warms the next one's data
/// while paying the cold-miss bill itself.
template <typename Fn>
double MedianSeconds(int runs, Fn&& fn) {
  fn();  // warm-up, untimed
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(runs));
  for (int run = 0; run < runs; ++run) {
    util::WallTimer timer;
    fn();
    samples.push_back(timer.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Min-of-runs variant for the register-resident distance/HLL loops. Those
/// loops touch no new memory once warm, so every disturbance (scheduler,
/// frequency dip) only ADDS time — the minimum is the standard estimator
/// of the true cost and is far more stable than a median on a shared host.
/// The verify benches stay on the median: they are memory-bound, and a
/// lucky fully-cached run is not the number to commit.
template <typename Fn>
double MinSeconds(int runs, Fn&& fn) {
  fn();  // warm-up, untimed
  double best = std::numeric_limits<double>::infinity();
  for (int run = 0; run < runs; ++run) {
    util::WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

void BenchDistanceKernels(const data::DenseDataset& rows, size_t reps) {
  const size_t n = rows.size();
  for (const util::simd::Tier tier : SupportedTiers()) {
    const core::kernels::KernelTable& table =
        core::kernels::KernelsForTier(tier);
    const struct {
      const char* name;
      float (*fn)(const float*, const float*, size_t);
    } kernels[] = {{"l1", table.l1},
                   {"l2sq", table.l2sq},
                   {"dot", table.dot},
                   {"cosine", table.cosine}};
    for (const auto& k : kernels) {
      const double seconds = MinSeconds(5, [&] {
        float sink = 0;
        for (size_t r = 0; r < reps; ++r) {
          sink += k.fn(rows.point(r % n), rows.point((r * 7 + 1) % n), kDim);
        }
        g_sink_f = g_sink_f + sink;
      });
      const double ns = seconds * 1e9 / static_cast<double>(reps);
      std::printf(
          "{\"bench\":\"kernels\",\"kind\":\"distance\",\"kernel\":\"%s\","
          "\"tier\":\"%s\",\"dim\":%zu,\"ns_per_distance\":%.2f}\n",
          k.name, std::string(util::simd::TierName(table.tier)).c_str(), kDim,
          ns);
    }
  }
}

void BenchHammingKernel(size_t reps) {
  const data::BinaryDataset codes = data::MakeRandomCodes(4096, 256, 101);
  const size_t n = codes.size();
  const size_t words = codes.words_per_code();
  for (const util::simd::Tier tier : SupportedTiers()) {
    const core::kernels::KernelTable& table =
        core::kernels::KernelsForTier(tier);
    const double seconds = MinSeconds(5, [&] {
      uint32_t sink = 0;
      for (size_t r = 0; r < reps; ++r) {
        sink += table.hamming(codes.point(r % n), codes.point((r * 7 + 1) % n),
                              words);
      }
      g_sink_u = g_sink_u + sink;
    });
    const double ns = seconds * 1e9 / static_cast<double>(reps);
    std::printf(
        "{\"bench\":\"kernels\",\"kind\":\"distance\",\"kernel\":\"hamming\","
        "\"tier\":\"%s\",\"dim\":%zu,\"ns_per_distance\":%.2f}\n",
        std::string(util::simd::TierName(table.tier)).c_str(), words * 64, ns);
  }
}

void BenchHllKernels(size_t reps) {
  util::Rng rng(102);
  for (const int precision : {7, 14}) {
    const size_t m = size_t{1} << precision;
    std::vector<uint8_t> dst(m), src(m);
    for (size_t i = 0; i < m; ++i) {
      dst[i] = static_cast<uint8_t>(rng.NextU64() % 30);
      src[i] = static_cast<uint8_t>(rng.NextU64() % 30);
    }
    for (const util::simd::Tier tier : SupportedTiers()) {
      const core::kernels::KernelTable& table =
          core::kernels::KernelsForTier(tier);
      {
        const double seconds = MinSeconds(5, [&] {
          for (size_t r = 0; r < reps; ++r) {
            table.hll_merge(dst.data(), src.data(), m);
          }
        });
        const double ns = seconds * 1e9 / static_cast<double>(reps);
        std::printf(
            "{\"bench\":\"kernels\",\"kind\":\"hll\",\"op\":\"merge\","
            "\"tier\":\"%s\",\"precision\":%d,\"ns_per_op\":%.2f}\n",
            std::string(util::simd::TierName(table.tier)).c_str(), precision,
            ns);
      }
      {
        const double seconds = MinSeconds(5, [&] {
          double sink = 0;
          size_t zeros = 0;
          for (size_t r = 0; r < reps; ++r) {
            sink += table.hll_sum(dst.data(), m, &zeros);
          }
          g_sink_d = g_sink_d + sink;
        });
        const double ns = seconds * 1e9 / static_cast<double>(reps);
        std::printf(
            "{\"bench\":\"kernels\",\"kind\":\"hll\",\"op\":\"fused_sum\","
            "\"tier\":\"%s\",\"precision\":%d,\"ns_per_op\":%.2f}\n",
            std::string(util::simd::TierName(table.tier)).c_str(), precision,
            ns);
      }
    }
  }
}

void BenchProjectionKernels(size_t reps) {
  // S1 cost per signature (k = 16 projections of one query), per tier and
  // per kernel form. "single" is the per-query matvec the plan path runs on
  // Query; "blocked" is the GEMM-shaped multi-query form QueryBatch pushes
  // whole batches through — same bits, each matrix row streamed once and
  // served to every query from registers. speedup_vs_scalar_single anchors
  // every row to the scalar per-query cost at the same dim.
  constexpr size_t kProjK = 16;
  constexpr size_t kBatch = 16;
  util::Rng rng(104);
  for (const size_t dim : {size_t{64}, size_t{256}, size_t{960}}) {
    std::vector<float> matrix(kProjK * dim);
    for (float& x : matrix) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
    std::vector<std::vector<float>> queries(kBatch);
    std::vector<const float*> query_ptrs(kBatch);
    for (size_t q = 0; q < kBatch; ++q) {
      queries[q].resize(dim);
      for (float& x : queries[q]) {
        x = static_cast<float>(rng.Uniform(-1.0, 1.0));
      }
      query_ptrs[q] = queries[q].data();
    }
    std::vector<float> out(kBatch * kProjK);
    const size_t rounds = std::max<size_t>(reps / (64 * kBatch), 1);

    double scalar_single_ns = 0.0;
    for (const util::simd::Tier tier : SupportedTiers()) {
      const core::kernels::ProjectionKernelTable& table =
          core::kernels::ProjectionKernelsForTier(tier);
      const double single_seconds = MinSeconds(5, [&] {
        float sink = 0;
        for (size_t r = 0; r < rounds; ++r) {
          for (size_t q = 0; q < kBatch; ++q) {
            table.matvec(matrix.data(), kProjK, dim, query_ptrs[q],
                         out.data() + q * kProjK);
          }
          sink += out[r % out.size()];
        }
        g_sink_f = g_sink_f + sink;
      });
      const double single_ns =
          single_seconds * 1e9 / static_cast<double>(rounds * kBatch);
      if (tier == util::simd::Tier::kScalar) scalar_single_ns = single_ns;
      std::printf(
          "{\"bench\":\"kernels\",\"kind\":\"projection\",\"form\":\"single\","
          "\"tier\":\"%s\",\"dim\":%zu,\"k\":%zu,\"ns_per_signature\":%.1f,"
          "\"speedup_vs_scalar_single\":%.2f}\n",
          std::string(util::simd::TierName(table.tier)).c_str(), dim, kProjK,
          single_ns, scalar_single_ns / single_ns);

      const double blocked_seconds = MinSeconds(5, [&] {
        float sink = 0;
        for (size_t r = 0; r < rounds; ++r) {
          table.matvec_block(matrix.data(), kProjK, dim, query_ptrs.data(),
                             kBatch, out.data());
          sink += out[r % out.size()];
        }
        g_sink_f = g_sink_f + sink;
      });
      const double blocked_ns =
          blocked_seconds * 1e9 / static_cast<double>(rounds * kBatch);
      std::printf(
          "{\"bench\":\"kernels\",\"kind\":\"projection\",\"form\":\"blocked\","
          "\"tier\":\"%s\",\"dim\":%zu,\"k\":%zu,\"ns_per_signature\":%.1f,"
          "\"speedup_vs_scalar_single\":%.2f}\n",
          std::string(util::simd::TierName(table.tier)).c_str(), dim, kProjK,
          blocked_ns, scalar_single_ns / blocked_ns);
    }
  }
}

/// The pre-kernel verification loop: one data/metric.h call per candidate.
size_t VerifyPerIdScalar(const data::DenseDataset& dataset, data::Metric metric,
                         const float* query, std::span<const uint32_t> ids,
                         double radius, std::vector<uint32_t>* out) {
  size_t reported = 0;
  for (const uint32_t id : ids) {
    double dist = 0;
    switch (metric) {
      case data::Metric::kL1:
        dist = data::L1Distance(dataset.point(id), query, kDim);
        break;
      case data::Metric::kL2:
        dist = data::L2Distance(dataset.point(id), query, kDim);
        break;
      default:
        dist = data::CosineDistance(dataset.point(id), query, kDim);
        break;
    }
    if (dist <= radius) {
      out->push_back(id);
      ++reported;
    }
  }
  return reported;
}

void BenchBlockVerify(const data::DenseDataset& dataset,
                      const data::QuantizedMirror* mirror, size_t num_ids,
                      int runs) {
  const util::simd::Tier entry_tier = util::simd::ResolvedTier();
  util::Rng rng(103);
  std::vector<uint32_t> ids(num_ids);
  for (uint32_t& id : ids) {
    id = static_cast<uint32_t>(rng.NextU64() % dataset.size());
  }
  const float* query = dataset.point(1);
  std::vector<uint32_t> out;
  out.reserve(num_ids);

  const struct {
    data::Metric metric;
    double radius;
  } cases[] = {{data::Metric::kL2, 0.45}, {data::Metric::kCosine, 0.10}};

  for (const auto& c : cases) {
    // Baseline: the old per-candidate path, always scalar data/metric.h.
    const double baseline_seconds = MedianSeconds(runs, [&] {
      out.clear();
      g_sink_u = g_sink_u + static_cast<uint32_t>(VerifyPerIdScalar(
                                dataset, c.metric, query, ids, c.radius, &out));
    });
    const double baseline_mcand =
        static_cast<double>(num_ids) / baseline_seconds / 1e6;
    std::printf(
        "{\"bench\":\"kernels\",\"kind\":\"verify\",\"metric\":\"%s\","
        "\"tier\":\"per_id_scalar\",\"dim\":%zu,\"ids\":%zu,"
        "\"mcand_per_sec\":%.1f,\"speedup_vs_per_id_scalar\":1.00}\n",
        std::string(data::MetricName(c.metric)).c_str(), kDim, num_ids,
        baseline_mcand);

    for (const util::simd::Tier tier : SupportedTiers()) {
      util::simd::SetResolvedTierForTest(tier);
      const double seconds = MedianSeconds(runs, [&] {
        out.clear();
        g_sink_u =
            g_sink_u + static_cast<uint32_t>(core::kernels::VerifyBlock(
                           dataset, c.metric, query, ids, c.radius, &out));
      });
      const double mcand = static_cast<double>(num_ids) / seconds / 1e6;
      std::printf(
          "{\"bench\":\"kernels\",\"kind\":\"verify\",\"metric\":\"%s\","
          "\"tier\":\"%s\",\"dim\":%zu,\"ids\":%zu,"
          "\"mcand_per_sec\":%.1f,\"speedup_vs_per_id_scalar\":%.2f}\n",
          std::string(data::MetricName(c.metric)).c_str(),
          std::string(util::simd::TierName(tier)).c_str(), kDim, num_ids,
          mcand, baseline_seconds / seconds);

      // The quantized tier: int8 screen + exact borderline rescore,
      // bit-identical output to the float VerifyBlock above. Speedup is
      // reported against the float block path at the SAME simd tier.
      core::kernels::QuantizedScreenStats stats;
      const double q_seconds = MedianSeconds(runs, [&] {
        out.clear();
        g_sink_u = g_sink_u +
                   static_cast<uint32_t>(core::kernels::VerifyBlockQuantized(
                       dataset, *mirror, c.metric, query, ids, c.radius, &out,
                       &stats));
      });
      const double q_mcand = static_cast<double>(num_ids) / q_seconds / 1e6;
      const double borderline_pct =
          stats.screened == 0
              ? 100.0
              : 100.0 * static_cast<double>(stats.borderline) /
                    static_cast<double>(stats.screened);
      std::printf(
          "{\"bench\":\"kernels\",\"kind\":\"verify_quantized\","
          "\"metric\":\"%s\",\"tier\":\"%s\",\"dim\":%zu,\"ids\":%zu,"
          "\"mcand_per_sec\":%.1f,\"speedup_vs_float_block\":%.2f,"
          "\"borderline_pct\":%.2f}\n",
          std::string(data::MetricName(c.metric)).c_str(),
          std::string(util::simd::TierName(tier)).c_str(), kDim, num_ids,
          q_mcand, seconds / q_seconds, borderline_pct);
    }
    util::simd::SetResolvedTierForTest(entry_tier);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Kernel subsystem: ns/distance per metric per tier, HLL "
              "register ops, block-verify throughput vs per-id scalar\n");
  bench::PrintScaleNote(scale);
  std::printf("# resolved tier: %s (max supported: %s, override: HLSH_SIMD)\n",
              std::string(util::simd::TierName(util::simd::ResolvedTier()))
                  .c_str(),
              std::string(util::simd::TierName(util::simd::MaxSupportedTier()))
                  .c_str());

  const size_t reps = scale.full ? 2000000 : 400000;
  // Small pair-kernel dataset: the distance rows measure register-level
  // kernel latency, so a cache-resident set is what we want there.
  data::DenseDataset kernel_rows =
      data::MakeCorelLike(scale.N(65536, 8), kDim, 100);

  BenchDistanceKernels(kernel_rows, reps);
  BenchHammingKernel(reps);
  BenchProjectionKernels(reps);
  BenchHllKernels(scale.full ? 400000 : 100000);

  // The verify rows deliberately dwarf the last-level cache (quick mode:
  // 512Ki x 64 floats = 128 MiB). Candidate verification in a serving
  // engine gathers rows from a dataset far bigger than L3, so the float
  // path is DRAM-bandwidth-bound — the regime the int8 mirror (4x fewer
  // bytes, and often L3-resident where the floats cannot be) is built for.
  // A cache-resident verify bench would hide exactly that difference.
  // Norms precomputed as a served read-only cosine dataset would be.
  data::DenseDataset verify_rows =
      data::MakeCorelLike(scale.N(1048576, 2), kDim, 100);
  verify_rows.PrecomputeNorms();
  const data::QuantizedMirror mirror = data::QuantizedMirror::Build(verify_rows);
  BenchBlockVerify(verify_rows, &mirror, scale.full ? 200000 : 50000,
                   scale.full ? 5 : 3);
  return 0;
}
