// Ablation A3: multi-probe LSH under the hybrid strategy (paper §5's first
// "future work" integration).
//
// Multi-probe trades tables for probes: T probes in each of L tables give
// L*T probed buckets from L tables' memory. The per-bucket HLLs merge
// across probes exactly as across tables, so the hybrid cost estimate
// works unchanged. This sweep holds the probe budget L*T = 50 fixed and
// varies the split, reporting recall, query time, index memory, and the
// %LS mix — the paper's observation is that multi-probe schemes "require a
// large number of probes", making the candSize estimate more valuable.

#include "bench_common.h"

using namespace hybridlsh;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Ablation A3: multi-probe (Corel-like L2, probe budget "
              "L*T = 50, r=0.45)\n");
  bench::PrintScaleNote(scale);

  const data::DenseDataset full =
      data::MakeCorelLike(scale.N(68040, 4), 32, 231);
  const data::DenseSplit split =
      data::SplitQueries(full, scale.num_queries, 232);
  const double radius = 0.45;

  const float* probe = split.queries.point(0);
  const core::CostModel model = bench::CalibratedModel(
      [&](size_t i) {
        return data::L2Distance(split.base.point(i), probe, 32);
      },
      std::min<size_t>(10000, split.base.size()), split.base.size(), 6.0);

  const auto truth = data::GroundTruthDense(split.base, split.queries, radius,
                                            data::Metric::kL2, 16);

  auto run_config = [&](const L2Index& index, size_t probes) {
    core::SearcherOptions hybrid_options;
    hybrid_options.cost_model = model;
    hybrid_options.probes_per_table = probes;
    L2Searcher hybrid(&index, &split.base, hybrid_options);

    std::vector<uint32_t> out;
    core::QueryStats stats;
    util::WallTimer timer;
    for (size_t q = 0; q < split.queries.size(); ++q) {
      out.clear();
      hybrid.Query(split.queries.point(q), radius, &out);
    }
    const double hybrid_seconds = timer.ElapsedSeconds();

    double rec_hyb = 0;
    size_t linear_calls = 0;
    for (size_t q = 0; q < split.queries.size(); ++q) {
      out.clear();
      hybrid.Query(split.queries.point(q), radius, &out, &stats);
      rec_hyb += data::Recall(out, truth[q]);
      linear_calls += stats.strategy == core::Strategy::kLinear;
    }
    rec_hyb /= static_cast<double>(split.queries.size());

    std::printf("  %-4d %-4zu %-12.5f %-10.3f %-12.2f %-8.1f\n",
                index.num_tables(), probes, hybrid_seconds, rec_hyb,
                static_cast<double>(index.stats().memory_bytes) /
                    (1024.0 * 1024.0),
                100.0 * static_cast<double>(linear_calls) /
                    static_cast<double>(split.queries.size()));
  };

  auto build_index = [&](int tables) {
    L2Index::Options options;
    options.num_tables = tables;
    options.k = 7;
    options.seed = 233;
    options.num_build_threads = 16;
    options.small_bucket_threshold = 16;
    auto index = L2Index::Build(lsh::PStableFamily::L2(32, 2 * radius),
                                split.base, options);
    HLSH_CHECK(index.ok());
    return std::move(*index);
  };

  std::printf("#\n# --- block 1: fixed probe budget L*T = 50 ---\n");
  std::printf("# %-4s %-4s %-12s %-10s %-12s %-8s\n", "L", "T", "hybrid_s",
              "rec_hyb", "memory_MiB", "%LS");
  {
    struct Config {
      int tables;
      size_t probes;
    };
    for (const Config& cfg : {Config{50, 1}, Config{25, 2}, Config{10, 5},
                              Config{5, 10}, Config{2, 25}}) {
      const L2Index index = build_index(cfg.tables);
      run_config(index, cfg.probes);
    }
  }

  std::printf("#\n# --- block 2: fixed L = 10 (1/5 the memory), growing "
              "probes ---\n");
  std::printf("# %-4s %-4s %-12s %-10s %-12s %-8s\n", "L", "T", "hybrid_s",
              "rec_hyb", "memory_MiB", "%LS");
  {
    const L2Index index = build_index(10);
    for (size_t probes : {size_t{1}, size_t{2}, size_t{5}, size_t{15},
                          size_t{30}, size_t{60}}) {
      run_config(index, probes);
    }
  }
  std::printf("#\n# Expectation: block 1 — memory shrinks ~linearly with L\n"
              "# while recall degrades gracefully; block 2 — at 1/5 the\n"
              "# memory, growing the probe count climbs recall back toward\n"
              "# the L = 50 level (the multi-probe trade the paper cites).\n");
  return 0;
}
