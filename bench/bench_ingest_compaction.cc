// Streaming-ingest benchmark for the segmented lifecycle
// (engine/segmented_index.h via the sharded engine).
//
// The workload a static Build never sees: an engine serving queries while
// points stream in and a fraction of the live set is deleted. Phases:
//
//   1. build    — initial sealed segments over the base set;
//   2. ingest   — stream inserts (with interleaved deletes), measuring
//                 ingest throughput and how query latency behaves while
//                 candidates sit in unsealed hash-map segments;
//   3. churn    — a query batch against the fragmented, tombstoned engine;
//   4. compact  — CompactAll wall time, memory before/after;
//   5. steady   — the same query batch on the compacted engine.
//
// Each row is one JSON object on its own line — the repo's machine-readable
// bench format:
//
//   {"bench":"ingest_compaction","shards":4,"ingest_qps":...,
//    "churn_query_qps":...,"compact_seconds":...,...}
//
// Comment lines (starting with '#') carry human-readable context.

#include <cstdio>

#include "bench_common.h"
#include "engine/sharded_engine.h"

using namespace hybridlsh;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Segmented lifecycle: ingest + delete churn, query QPS "
              "before/after compaction (Corel-like L2, sharded engine)\n");
  bench::PrintScaleNote(scale);

  const double radius = 0.45;
  const size_t dim = 32;
  const size_t base_n = scale.N(68040, 8);
  const size_t ingest_n = base_n / 2;  // stream in another 50%
  const data::DenseDataset full =
      data::MakeCorelLike(base_n + ingest_n, dim, /*seed=*/411);
  const data::DenseSplit split =
      data::SplitQueries(full, scale.num_queries, /*seed=*/412);
  const size_t live_base = split.base.size() - ingest_n;

  std::printf("# base_n=%zu ingest_n=%zu d=%zu L=50 k=7 radius=%.2f "
              "delete 1 per 4 inserts\n",
              live_base, ingest_n, dim, radius);

  for (size_t num_shards : {1, 4, 8}) {
    // The engine indexes the first live_base points; the tail of the split
    // streams in afterwards through Insert (points are copied out first so
    // the growing dataset never aliases the source).
    data::DenseDataset dataset(0, dim);
    for (size_t i = 0; i < live_base; ++i) {
      dataset.Append({split.base.point(i), dim});
    }

    engine::ShardedEngine<lsh::PStableFamily>::Options options;
    options.num_shards = num_shards;
    options.index.num_tables = 50;
    options.index.k = 7;
    options.index.seed = 413;
    options.active_seal_threshold = 4096;
    options.max_sealed_segments = 0;  // manual CompactAll below
    options.searcher.cost_model = core::CostModel::FromRatio(6.0);

    auto built = engine::ShardedEngine<lsh::PStableFamily>::Build(
        lsh::PStableFamily::L2(dim, 2 * radius), &dataset, options);
    HLSH_CHECK(built.ok());
    auto engine = std::move(*built);

    // Phase 2: ingest with 1 delete per 4 inserts.
    util::Rng rng(415);
    util::WallTimer ingest_timer;
    for (size_t i = 0; i < ingest_n; ++i) {
      HLSH_CHECK(engine.Insert(split.base.point(live_base + i)).ok());
      if (i % 4 == 3) {
        const uint32_t victim = static_cast<uint32_t>(
            rng.UniformInt(0, static_cast<int64_t>(dataset.size() - 1)));
        HLSH_CHECK(engine.Remove(victim).ok());
      }
    }
    const double ingest_seconds = ingest_timer.ElapsedSeconds();
    const size_t memory_before = engine.stats().memory_bytes;

    // Phase 3: queries against the fragmented engine.
    double churn_seconds = 0;
    const auto churn_results =
        engine.QueryBatch(split.queries, radius, &churn_seconds);

    // Phase 4: compaction.
    util::WallTimer compact_timer;
    engine.CompactAll();
    const double compact_seconds = compact_timer.ElapsedSeconds();
    const size_t memory_after = engine.stats().memory_bytes;

    // Phase 5: queries against the compacted engine.
    double steady_seconds = 0;
    const auto steady_results =
        engine.QueryBatch(split.queries, radius, &steady_seconds);
    HLSH_CHECK(churn_results.size() == steady_results.size());

    const double nq = static_cast<double>(split.queries.size());
    std::printf(
        "{\"bench\":\"ingest_compaction\",\"metric\":\"L2\","
        "\"base_n\":%zu,\"ingest_n\":%zu,\"dim\":%zu,\"radius\":%.2f,"
        "\"shards\":%zu,\"live_n\":%zu,"
        "\"ingest_qps\":%.1f,\"churn_query_qps\":%.1f,"
        "\"steady_query_qps\":%.1f,\"compact_seconds\":%.4f,"
        "\"memory_before_mb\":%.2f,\"memory_after_mb\":%.2f}\n",
        live_base, ingest_n, dim, radius, num_shards, engine.size(),
        ingest_seconds > 0 ? static_cast<double>(ingest_n) / ingest_seconds
                           : 0.0,
        churn_seconds > 0 ? nq / churn_seconds : 0.0,
        steady_seconds > 0 ? nq / steady_seconds : 0.0, compact_seconds,
        static_cast<double>(memory_before) / (1024.0 * 1024.0),
        static_cast<double>(memory_after) / (1024.0 * 1024.0));
  }
  return 0;
}
