// Figure 3: Webspam output-size spread (left) and percentage of linear-
// search calls inside hybrid search (right).
//
// Paper observations (§4.2): even at tiny radii the per-query output size
// on Webspam varies wildly — the maximum exceeds n/2 while the minimum is
// near zero — and the fraction of hybrid queries answered by linear search
// rises from ~10% at r = 0.05 to ~50% at r = 0.10.

#include "bench_common.h"

using namespace hybridlsh;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Figure 3: Webspam-like output-size spread and %%LS calls\n");
  bench::PrintScaleNote(scale);

  data::WebspamLikeConfig config;
  config.n = scale.N(350000);
  config.dim = 254;
  config.cluster_fraction = 0.55;
  config.eps_min = 0.02;
  config.eps_max = 0.40;
  config.seed = 211;  // same workload as Figure 2(b)
  const data::DenseDataset full = data::MakeWebspamLike(config);
  const data::DenseSplit split =
      data::SplitQueries(full, scale.num_queries, /*seed=*/212);
  const size_t n = split.base.size();
  std::printf("# n=%zu queries=%zu (n/2 = %zu)\n", n, split.queries.size(),
              n / 2);

  const float* probe_query = split.queries.point(0);
  const core::CostModel model = bench::CalibratedModel(
      [&](size_t i) {
        return data::CosineDistance(split.base.point(i), probe_query,
                                    split.base.dim());
      },
      std::min<size_t>(10000, split.base.size()), split.base.size(),
      /*paper_ratio=*/10.0);
  // %LS is reported under both the measured cost model and the paper's
  // pinned beta/alpha = 10 (its Python implementation's ratio, under which
  // the paper observes ~10% at r = 0.05 rising to ~50% at r = 0.10).
  std::printf("# %-9s %-10s %-10s %-10s %-10s %-10s %-12s\n", "radius",
              "avg_out", "max_out", "min_out", "n/2", "%LS_meas",
              "%LS_papermodel");
  for (double radius : {0.05, 0.06, 0.07, 0.08, 0.09, 0.10}) {
    CosineIndex::Options options;
    options.num_tables = 50;
    options.delta = 0.1;
    options.radius = radius;
    options.seed = 213;
    options.num_build_threads = 16;
    // Sketch buckets of >= 16 ids: bounds the query-time folding of
    // sketch-less buckets (see DESIGN.md ablation A4) at modest space cost.
    options.small_bucket_threshold = 16;
    auto index = CosineIndex::Build(lsh::SimHashFamily(full.dim()), split.base,
                                    options);
    HLSH_CHECK(index.ok());

    // Exact output sizes come from ground truth (the paper plots true
    // output sizes); %LS comes from the hybrid decision.
    const auto truth = data::GroundTruthDense(split.base, split.queries, radius,
                                              data::Metric::kCosine, 16);
    util::RunningStat output_sizes;
    for (const auto& t : truth) output_sizes.Add(static_cast<double>(t.size()));

    const auto result = bench::RunStrategies(*index, split.base, split.queries,
                                             radius, model, truth, 1);
    // Decision mix under the paper's pinned ratio, via estimate-only
    // passes (no execution needed for the strategy count).
    core::SearcherOptions paper_options;
    paper_options.cost_model = core::CostModel::FromRatio(10.0);
    CosineSearcher paper_searcher(&*index, &split.base, paper_options);
    size_t paper_linear_calls = 0;
    for (size_t q = 0; q < split.queries.size(); ++q) {
      paper_linear_calls += paper_searcher.EstimateOnly(split.queries.point(q))
                                .strategy == core::Strategy::kLinear;
    }
    const double pct_paper = 100.0 * static_cast<double>(paper_linear_calls) /
                             static_cast<double>(split.queries.size());
    std::printf("  %-9.2f %-10.0f %-10.0f %-10.0f %-10zu %-10.1f %-12.1f\n",
                radius, output_sizes.mean(), output_sizes.max(),
                output_sizes.min(), n / 2, result.pct_linear_calls, pct_paper);
  }
  return 0;
}
