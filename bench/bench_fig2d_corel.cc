// Figure 2(d): CPU time vs radius on Corel Images with L2 distance.
//
// Paper setup (§4): Corel (n = 68,040, d = 32), Gaussian (2-stable)
// projections with k = 7 and w = 2r, L = 50, radii 0.35..0.60,
// beta/alpha = 6. Paper shape: LSH ~ hybrid well below linear at 0.35;
// LSH crosses linear near the top of the range while hybrid converges to
// linear from below.
//
// Dataset substitution: MakeCorelLike — smooth Gaussian mixture on a
// [0,1]-scale feature box; see DESIGN.md §2.

#include "bench_common.h"

using namespace hybridlsh;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Figure 2(d): Corel-like, L2 distance via 2-stable "
              "projections (k=7, w=2r)\n");
  bench::PrintScaleNote(scale);

  const data::DenseDataset full =
      data::MakeCorelLike(scale.N(68040, 4), 32, /*seed=*/231);
  const data::DenseSplit split =
      data::SplitQueries(full, scale.num_queries, /*seed=*/232);
  std::printf("# n=%zu queries=%zu d=32 L=50 k=7 beta/alpha=6\n",
              split.base.size(), split.queries.size());

  const float* probe_query = split.queries.point(0);
  const core::CostModel model = bench::CalibratedModel(
      [&](size_t i) {
        return data::L2Distance(split.base.point(i), probe_query,
                                split.base.dim());
      },
      std::min<size_t>(10000, split.base.size()), split.base.size(),
      /*paper_ratio=*/6.0);
  bench::PrintFig2Header();
  for (double radius : {0.35, 0.40, 0.45, 0.50, 0.55, 0.60}) {
    L2Index::Options options;
    options.num_tables = 50;
    options.k = 7;  // paper's pinned setting
    options.seed = 233;
    options.num_build_threads = 16;
    // Sketch buckets of >= 16 ids: bounds the query-time folding of
    // sketch-less buckets (see DESIGN.md ablation A4) at modest space cost.
    options.small_bucket_threshold = 16;
    auto index = L2Index::Build(lsh::PStableFamily::L2(32, 2 * radius),
                                split.base, options);
    HLSH_CHECK(index.ok());

    const auto truth = data::GroundTruthDense(split.base, split.queries, radius,
                                              data::Metric::kL2, 16);
    const auto result = bench::RunStrategies(*index, split.base, split.queries,
                                             radius, model, truth, scale.runs);
    bench::PrintFig2Row(radius, result);
  }
  return 0;
}
