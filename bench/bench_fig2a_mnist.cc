// Figure 2(a): CPU time vs radius on MNIST with Hamming distance.
//
// Paper setup (§4): MNIST (n = 60,000, d = 780) reduced to 64-bit SimHash
// fingerprints, bit-sampling LSH, L = 50, k auto at delta = 0.1, Hamming
// radii 12..17, beta/alpha = 1. Paper shape: LSH ~ hybrid < linear at
// small radii; LSH degrades as r grows while hybrid converges to linear.
//
// Dataset substitution: MakeMnistLike (clustered near-binary vectors) ->
// the same 64-bit fingerprint pipeline; see DESIGN.md §2.

#include "bench_common.h"

using namespace hybridlsh;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Figure 2(a): MNIST-like, Hamming distance on 64-bit "
              "SimHash fingerprints\n");
  bench::PrintScaleNote(scale);

  const size_t pixel_dim = 780;
  const data::DenseDataset pixels =
      data::MakeMnistLike(scale.N(60000, 2), pixel_dim, 10, /*seed=*/201);
  const lsh::Fingerprinter fingerprinter(pixel_dim, 64, /*seed=*/202);
  auto codes = fingerprinter.Transform(pixels);
  HLSH_CHECK(codes.ok());
  const data::BinarySplit split =
      data::SplitQueriesBinary(*codes, scale.num_queries, /*seed=*/203);
  std::printf("# n=%zu queries=%zu width=64 L=50 delta=0.1 beta/alpha=1\n",
              split.base.size(), split.queries.size());

  const size_t words = split.base.words_per_code();
  const uint64_t* probe_query = split.queries.point(0);
  const core::CostModel model = bench::CalibratedModel(
      [&](size_t i) {
        return static_cast<double>(
            data::HammingDistance(split.base.point(i), probe_query, words));
      },
      std::min<size_t>(10000, split.base.size()), split.base.size(),
      /*paper_ratio=*/1.0);
  bench::PrintFig2Header();
  for (uint32_t radius = 12; radius <= 17; ++radius) {
    HammingIndex::Options options;
    options.num_tables = 50;
    options.delta = 0.1;
    options.radius = radius;
    options.seed = 204;
    options.num_build_threads = 16;
    // Sketch buckets of >= 16 ids: bounds the query-time folding of
    // sketch-less buckets (see DESIGN.md ablation A4) at modest space cost.
    options.small_bucket_threshold = 16;
    auto index =
        HammingIndex::Build(lsh::BitSamplingFamily(64), split.base, options);
    HLSH_CHECK(index.ok());

    const auto truth =
        data::GroundTruthBinary(split.base, split.queries, radius, 16);
    const auto result = bench::RunStrategies(*index, split.base, split.queries,
                                             radius, model, truth, scale.runs);
    bench::PrintFig2Row(radius, result);
  }
  return 0;
}
