// Serving-latency-under-churn benchmark for the concurrent core
// (engine/sharded_engine.h QueryConcurrent + background seal/compaction).
//
// The question the lock-free query path exists to answer: what does a
// reader's tail latency look like while writers churn the index? Two
// phases per reader-thread count:
//
//   1. read_only — N reader threads, each with its own QueryScratch,
//      running QueryConcurrent back to back over a quiesced engine;
//   2. mixed     — the same readers while one writer thread streams
//      rate-limited Insert/Remove churn (1 delete per 4 inserts) with
//      background maintenance sealing and compacting off the write path.
//
// Per-query wall latencies are recorded per thread and merged; each row
// reports p50/p95/p99 in microseconds plus aggregate QPS — one JSON object
// per line, the repo's machine-readable bench format:
//
//   {"bench":"churn_latency","phase":"mixed","threads":2,"p99_us":...}
//
// The serving-core regression gate: at the same thread count, the mixed
// p99 should stay within 2x of the read-only p99 — churn costs CPU, but
// epoch publication means it never blocks a reader.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/sharded_engine.h"
#include "util/stats.h"

using namespace hybridlsh;

namespace {

struct PhaseResult {
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double qps = 0;
  size_t queries = 0;
};

/// Runs `num_threads` readers for `queries_per_thread` queries each and
/// returns merged latency percentiles. Readers start together on a latch.
PhaseResult RunReaders(engine::ShardedEngine<lsh::PStableFamily>& engine,
                       const data::DenseDataset& queries, double radius,
                       size_t num_threads, size_t queries_per_thread) {
  std::vector<std::vector<double>> latencies(num_threads);
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> readers;
  readers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    readers.emplace_back([&, t] {
      auto scratch = engine.MakeQueryScratch();
      std::vector<uint32_t> out;
      latencies[t].reserve(queries_per_thread);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (size_t q = 0; q < queries_per_thread; ++q) {
        const auto query = queries.point((q * num_threads + t) % queries.size());
        out.clear();
        util::WallTimer timer;
        engine.QueryConcurrent(query, radius, &out, &scratch);
        latencies[t].push_back(timer.ElapsedSeconds());
      }
    });
  }
  while (ready.load() < num_threads) std::this_thread::yield();
  util::WallTimer wall;
  go.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  const double wall_seconds = wall.ElapsedSeconds();

  std::vector<double> merged;
  for (const auto& thread_latencies : latencies) {
    merged.insert(merged.end(), thread_latencies.begin(),
                  thread_latencies.end());
  }
  PhaseResult result;
  result.queries = merged.size();
  result.p50_us = util::Percentile(merged, 0.50) * 1e6;
  result.p95_us = util::Percentile(merged, 0.95) * 1e6;
  result.p99_us = util::Percentile(merged, 0.99) * 1e6;
  result.qps = wall_seconds > 0 ? static_cast<double>(merged.size()) /
                                      wall_seconds
                                : 0;
  return result;
}

/// Runs a phase with one short untimed warm-up (touches the dataset and
/// fault-in pages so the first measured query is not a cold outlier) and
/// then three timed runs, returning the run with the MEDIAN p99. A single
/// run's tail on a noisy host is dominated by whichever query ate a
/// scheduling hiccup; the median keeps the committed numbers stable.
PhaseResult MedianByP99(engine::ShardedEngine<lsh::PStableFamily>& engine,
                        const data::DenseDataset& queries, double radius,
                        size_t num_threads, size_t queries_per_thread) {
  constexpr int kRuns = 3;
  RunReaders(engine, queries, radius, num_threads,
             std::max<size_t>(queries_per_thread / 4, 1));  // warm-up
  std::vector<PhaseResult> runs;
  runs.reserve(kRuns);
  for (int r = 0; r < kRuns; ++r) {
    runs.push_back(
        RunReaders(engine, queries, radius, num_threads, queries_per_thread));
  }
  std::sort(runs.begin(), runs.end(),
            [](const PhaseResult& a, const PhaseResult& b) {
              return a.p99_us < b.p99_us;
            });
  return runs[kRuns / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Concurrent serving core: QueryConcurrent tail latency, "
              "quiesced vs. under rate-limited insert/delete churn\n");
  bench::PrintScaleNote(scale);

  const double radius = 0.45;
  const size_t dim = 32;
  const size_t base_n = scale.N(68040, 8);
  const size_t churn_pool = base_n / 2;
  const data::DenseDataset full =
      data::MakeCorelLike(base_n + churn_pool, dim, /*seed=*/421);
  const data::DenseSplit split =
      data::SplitQueries(full, scale.num_queries, /*seed=*/422);
  const size_t live_base = split.base.size() - churn_pool;
  const size_t queries_per_thread = scale.full ? 2000 : 400;
  const double writer_ops_per_sec = 5000.0;

  std::printf("# base_n=%zu d=%zu L=25 k=7 radius=%.2f shards=4 "
              "writer=%.0f ops/s (1 delete per 4 inserts), "
              "background seal threshold=2048\n",
              live_base, dim, radius, writer_ops_per_sec);

  for (size_t num_threads : {1, 2, 4}) {
    // Fresh engine per thread count so churn from one sweep point never
    // pollutes the next phase's read-only baseline.
    data::DenseDataset dataset(0, dim);
    for (size_t i = 0; i < live_base; ++i) {
      dataset.Append({split.base.point(i), dim});
    }
    engine::ShardedEngine<lsh::PStableFamily>::Options options;
    options.num_shards = 4;
    options.index.num_tables = 25;
    options.index.k = 7;
    options.index.seed = 423;
    options.active_seal_threshold = 2048;
    options.max_sealed_segments = 4;
    options.searcher.cost_model = core::CostModel::FromRatio(6.0);
    auto built = engine::ShardedEngine<lsh::PStableFamily>::Build(
        lsh::PStableFamily::L2(dim, 2 * radius), &dataset, options);
    HLSH_CHECK(built.ok());
    auto engine = std::move(*built);

    // Phase 1: quiesced baseline (warm-up + median-of-3 by p99).
    const PhaseResult read_only = MedianByP99(engine, split.queries, radius,
                                              num_threads, queries_per_thread);
    std::printf(
        "{\"bench\":\"churn_latency\",\"phase\":\"read_only\","
        "\"threads\":%zu,\"queries\":%zu,\"p50_us\":%.1f,\"p95_us\":%.1f,"
        "\"p99_us\":%.1f,\"qps\":%.1f}\n",
        num_threads, read_only.queries, read_only.p50_us, read_only.p95_us,
        read_only.p99_us, read_only.qps);

    // Phase 2: the same readers with a rate-limited writer churning the
    // index (and background maintenance sealing behind it).
    std::atomic<bool> stop_writer{false};
    std::atomic<size_t> writer_ops{0};
    std::thread writer([&] {
      const auto interval = std::chrono::duration<double>(
          1.0 / writer_ops_per_sec);
      util::Rng rng(424);
      size_t i = 0;
      const auto start = std::chrono::steady_clock::now();
      while (!stop_writer.load(std::memory_order_acquire)) {
        HLSH_CHECK(
            engine.Insert(split.base.point(live_base + i % churn_pool)).ok());
        writer_ops.fetch_add(1, std::memory_order_relaxed);
        if (i % 4 == 3) {
          const uint32_t victim = static_cast<uint32_t>(rng.UniformInt(
              0, static_cast<int64_t>(dataset.size() - 1)));
          // Double-removes are fine (idempotent no-op in the engine).
          HLSH_CHECK(engine.Remove(victim).ok());
          writer_ops.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
        // Rate limit: sleep until this op's scheduled slot.
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        interval * static_cast<double>(
                                       writer_ops.load(
                                           std::memory_order_relaxed))));
      }
    });
    util::WallTimer mixed_wall;
    const PhaseResult mixed = MedianByP99(engine, split.queries, radius,
                                          num_threads, queries_per_thread);
    const double mixed_seconds = mixed_wall.ElapsedSeconds();
    stop_writer.store(true, std::memory_order_release);
    writer.join();
    engine.DrainMaintenance();

    std::printf(
        "{\"bench\":\"churn_latency\",\"phase\":\"mixed\",\"threads\":%zu,"
        "\"queries\":%zu,\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f,"
        "\"qps\":%.1f,\"writer_ops\":%zu,\"writer_ops_per_sec\":%.1f,"
        "\"p99_vs_read_only\":%.2f}\n",
        num_threads, mixed.queries, mixed.p50_us, mixed.p95_us, mixed.p99_us,
        mixed.qps, writer_ops.load(),
        mixed_seconds > 0
            ? static_cast<double>(writer_ops.load()) / mixed_seconds
            : 0.0,
        read_only.p99_us > 0 ? mixed.p99_us / read_only.p99_us : 0.0);
  }
  return 0;
}
