// Serving-engine throughput: batch QPS versus shard count and pool size.
//
// Unlike the figure benches (paper reproduction, per-query CPU time), this
// measures the engine/ layer as a service: a Corel-like L2 workload is
// answered in one QueryBatch call through the type-erased facade, sweeping
// num_shards x num_threads. Each row is one JSON object on its own line —
// the repo's machine-readable bench format for tracking the perf
// trajectory:
//
//   {"bench":"engine_throughput","metric":"L2","n":17010,...,"qps":1234.5}
//
// Comment lines (starting with '#') carry the human-readable context and
// are not part of the JSON stream.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "engine/search_engine.h"

using namespace hybridlsh;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Engine throughput: batch QPS vs (shards, threads), "
              "Corel-like L2 workload through the SearchEngine facade\n");
  bench::PrintScaleNote(scale);

  const double radius = 0.45;
  const data::DenseDataset full =
      data::MakeCorelLike(scale.N(68040, 4), 32, /*seed=*/311);
  const data::DenseSplit split =
      data::SplitQueries(full, scale.num_queries, /*seed=*/312);
  // A serving batch repeats the query set so the timed region is long
  // enough to amortize fan-out overheads.
  const size_t batch_repeats = scale.full ? 10 : 4;
  data::DenseDataset batch(0, split.queries.dim());
  for (size_t r = 0; r < batch_repeats; ++r) {
    for (size_t q = 0; q < split.queries.size(); ++q) {
      batch.Append({split.queries.point(q), split.queries.dim()});
    }
  }
  std::printf("# n=%zu batch=%zu d=32 L=50 k=7 radius=%.2f beta/alpha=6\n",
              split.base.size(), batch.size(), radius);

  // The quantized dimension brackets the int8 verification tier: identical
  // results either way (the screen rescores borderline candidates with the
  // exact float kernels), so the row pair isolates the verify-path cost.
  for (const bool quantized : {true, false}) {
  for (size_t num_shards : {1, 2, 4, 8}) {
    for (size_t num_threads : {1, 2, 4, 8}) {
      engine::EngineOptions options;
      options.num_shards = num_shards;
      options.num_threads = num_threads;
      options.num_tables = 50;
      options.k = 7;
      options.radius = radius;  // w = 2r
      options.seed = 313;
      options.searcher.cost_model = core::CostModel::FromRatio(6.0);
      options.quantized_verify = quantized;

      auto built = engine::BuildEngine(data::Metric::kL2, &split.base, options);
      HLSH_CHECK(built.ok());
      engine::SearchEngine& engine = **built;

      // Warmup pass (allocates per-worker scratch), then three timed
      // passes keeping the median wall time — the committed QPS rows gate
      // CI at a 30% threshold, so a single run's scheduler hiccup must not
      // become the baseline.
      HLSH_CHECK(engine.QueryBatch(batch, radius).ok());
      std::vector<double> walls;
      util::StatusOr<std::vector<engine::ShardedBatchResult>> results =
          engine.QueryBatch(batch, radius);
      for (int run = 0; run < 3; ++run) {
        double run_seconds = 0;
        results = engine.QueryBatch(batch, radius, &run_seconds);
        HLSH_CHECK(results.ok());
        walls.push_back(run_seconds);
      }
      std::sort(walls.begin(), walls.end());
      const double wall_seconds = walls[walls.size() / 2];

      size_t lsh_shards = 0, linear_shards = 0;
      double total_output = 0;
      double hash_seconds = 0;  // S1 share: once per query, not per shard
      for (const engine::ShardedBatchResult& result : *results) {
        lsh_shards += result.stats.lsh_shards;
        linear_shards += result.stats.linear_shards;
        total_output += static_cast<double>(result.neighbors.size());
        hash_seconds += result.stats.hash_seconds;
      }
      const double qps =
          wall_seconds > 0
              ? static_cast<double>(results->size()) / wall_seconds
              : 0.0;
      // Hash-phase breakdown of the batch: mean S1 microseconds per query
      // (the amortized blocked-kernel plan computation) and its share of
      // the total per-query work (sum over workers, so it can only shrink
      // as the hash-once plan replaces per-shard rehashing).
      const double hash_us_per_query =
          hash_seconds * 1e6 / static_cast<double>(results->size());
      const double hash_pct =
          wall_seconds > 0 ? 100.0 * hash_seconds /
                                 (wall_seconds * static_cast<double>(
                                                     engine.num_threads()))
                           : 0.0;
      std::printf(
          "{\"bench\":\"engine_throughput\",\"metric\":\"L2\","
          "\"n\":%zu,\"dim\":32,\"batch\":%zu,\"radius\":%.2f,"
          "\"shards\":%zu,\"threads\":%zu,\"quantized\":%s,"
          "\"build_seconds\":%.4f,\"wall_seconds\":%.4f,\"qps\":%.1f,"
          "\"avg_output\":%.1f,\"pct_linear_shards\":%.1f,"
          "\"hash_us_per_query\":%.2f,\"hash_pct\":%.2f}\n",
          split.base.size(), results->size(), radius, num_shards, num_threads,
          quantized ? "true" : "false", engine.stats().build_seconds,
          wall_seconds, qps,
          total_output / static_cast<double>(results->size()),
          100.0 * static_cast<double>(linear_shards) /
              static_cast<double>(lsh_shards + linear_shards),
          hash_us_per_query, hash_pct);
    }
  }
  }
  return 0;
}
