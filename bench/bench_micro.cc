// M1: google-benchmark micro suite for the primitive operations behind the
// cost model's alpha and beta constants and the O(mL) estimation bound:
//
//   * alpha  — VisitedSet::Insert (S2 dedup);
//   * beta   — one distance computation per metric/dimension;
//   * S1     — k-wise signature computation per family;
//   * est.   — HLL update, 50-way merge + estimate (the paper's O(mL)).

#include <benchmark/benchmark.h>

#include "core/hybridlsh.h"
#include "hll/kmv.h"
#include "util/random.h"

using namespace hybridlsh;

namespace {

// --- alpha: dedup ------------------------------------------------------------

void BM_VisitedSetInsert(benchmark::State& state) {
  const size_t capacity = static_cast<size_t>(state.range(0));
  util::VisitedSet visited(capacity);
  util::Rng rng(1);
  std::vector<uint32_t> ids(1 << 14);
  for (auto& id : ids) {
    id = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(capacity) - 1));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(visited.Insert(ids[i & (ids.size() - 1)]));
    ++i;
    if ((i & 0xffff) == 0) visited.Reset();  // keep the touched list bounded
  }
}
BENCHMARK(BM_VisitedSetInsert)->Arg(60000)->Arg(350000);

// --- beta: distances ---------------------------------------------------------

void BM_L2Distance(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<float> a(dim), b(dim);
  for (size_t j = 0; j < dim; ++j) {
    a[j] = static_cast<float>(rng.Gaussian());
    b[j] = static_cast<float>(rng.Gaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::L2Distance(a.data(), b.data(), dim));
  }
}
BENCHMARK(BM_L2Distance)->Arg(32)->Arg(254);

void BM_L1Distance(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<float> a(dim), b(dim);
  for (size_t j = 0; j < dim; ++j) {
    a[j] = static_cast<float>(rng.Gaussian());
    b[j] = static_cast<float>(rng.Gaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::L1Distance(a.data(), b.data(), dim));
  }
}
BENCHMARK(BM_L1Distance)->Arg(54);

void BM_CosineDistance(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  util::Rng rng(4);
  std::vector<float> a(dim), b(dim);
  for (size_t j = 0; j < dim; ++j) {
    a[j] = static_cast<float>(rng.Gaussian());
    b[j] = static_cast<float>(rng.Gaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::CosineDistance(a.data(), b.data(), dim));
  }
}
BENCHMARK(BM_CosineDistance)->Arg(254);

void BM_HammingDistance64(benchmark::State& state) {
  util::Rng rng(5);
  const uint64_t a = rng.NextU64(), b = rng.NextU64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::HammingDistance(&a, &b, 1));
  }
}
BENCHMARK(BM_HammingDistance64);

// --- S1: signatures ----------------------------------------------------------

void BM_SimHashSignature(benchmark::State& state) {
  const size_t dim = 254, k = static_cast<size_t>(state.range(0));
  lsh::SimHashFamily family(dim);
  util::Rng rng(6);
  const auto fns = family.Sample(k, &rng);
  std::vector<float> x(dim);
  for (auto& v : x) v = static_cast<float>(rng.Gaussian());
  std::vector<int32_t> slots(k);
  for (auto _ : state) {
    family.Signature(fns, x.data(), slots);
    benchmark::DoNotOptimize(slots.data());
  }
}
BENCHMARK(BM_SimHashSignature)->Arg(20);

void BM_PStableSignature(benchmark::State& state) {
  const size_t dim = 54, k = static_cast<size_t>(state.range(0));
  lsh::PStableFamily family = lsh::PStableFamily::L1(dim, 4.0);
  util::Rng rng(7);
  const auto fns = family.Sample(k, &rng);
  std::vector<float> x(dim);
  for (auto& v : x) v = static_cast<float>(rng.Gaussian());
  std::vector<int32_t> slots(k);
  for (auto _ : state) {
    family.Signature(fns, x.data(), slots);
    benchmark::DoNotOptimize(slots.data());
  }
}
BENCHMARK(BM_PStableSignature)->Arg(8);

// --- estimation: HLL ---------------------------------------------------------

void BM_HllAddHash(benchmark::State& state) {
  hll::HyperLogLog sketch(7);
  util::Rng rng(8);
  uint64_t h = rng.NextU64();
  for (auto _ : state) {
    sketch.AddHash(h);
    h = h * 0x9e3779b97f4a7c15ULL + 1;  // cheap stream
    benchmark::DoNotOptimize(sketch);
  }
}
BENCHMARK(BM_HllAddHash);

void BM_HllMerge50AndEstimate(benchmark::State& state) {
  // The paper's O(mL) query overhead: merge 50 bucket sketches (m = 128)
  // and estimate.
  const int precision = static_cast<int>(state.range(0));
  util::Rng rng(9);
  std::vector<hll::HyperLogLog> buckets;
  for (int t = 0; t < 50; ++t) {
    hll::HyperLogLog sketch(precision);
    for (int i = 0; i < 500; ++i) sketch.AddHash(rng.NextU64());
    buckets.push_back(std::move(sketch));
  }
  hll::HyperLogLog merged(precision);
  for (auto _ : state) {
    merged.Clear();
    for (const auto& bucket : buckets) {
      benchmark::DoNotOptimize(merged.Merge(bucket));
    }
    benchmark::DoNotOptimize(merged.Estimate());
  }
}
BENCHMARK(BM_HllMerge50AndEstimate)->Arg(5)->Arg(7)->Arg(10);

void BM_KmvAddHash(benchmark::State& state) {
  hll::KmvSketch sketch(128);
  util::Rng rng(10);
  uint64_t h = rng.NextU64();
  for (auto _ : state) {
    sketch.AddHash(h);
    h = h * 0x9e3779b97f4a7c15ULL + 1;
    benchmark::DoNotOptimize(sketch);
  }
}
BENCHMARK(BM_KmvAddHash);

// --- hashing -----------------------------------------------------------------

void BM_Fmix64(benchmark::State& state) {
  uint64_t v = 0x12345;
  for (auto _ : state) {
    v = util::Fmix64(v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Fmix64);

void BM_HashBytesSignature(benchmark::State& state) {
  // Bucket-key derivation: hash a k-slot signature (k = 20 int32s).
  int32_t slots[20];
  for (int i = 0; i < 20; ++i) slots[i] = i * 77;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::HashBytes(slots, sizeof(slots), 42));
  }
}
BENCHMARK(BM_HashBytesSignature);

}  // namespace

BENCHMARK_MAIN();
