// Filtered-query pushdown vs post-filtering, and fused-query throughput.
//
// The pipeline's claim: pushing a predicate below the distance kernels
// (filter stage -> selectivity-aware cost model -> filtered verify) beats
// running the unfiltered query and discarding non-matching ids afterwards,
// and the win grows as the predicate gets more selective — at 1% the cost
// model flips the engine to a linear scan over filter survivors, so the
// query never pays a distance for a point the predicate rejects.
//
// Sweep: selectivity in {0.1%, 1%, 10%, 50%} over a Corel-like L2 batch
// workload through ShardedEngine::QueryBatch (the filter is evaluated once
// per batch and shared read-only by the workers). Both sides answer the
// exact same result sets (property-tested in tests/test_filtered_fusion.cc);
// only where the predicate is applied differs.
//
// Rows are the repo's JSON-lines bench format. The committed baseline is
// BENCH_filter.json; `speedup_pushdown_vs_postfilter` is the CI-gated
// ratio (tools/check_bench_regression.py) — machine-independent, both
// sides run in this process. The fused rows are context: wall cost of a
// two-clause RRF fusion relative to two sequential single queries.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/attributes.h"
#include "engine/query_pipeline.h"
#include "engine/sharded_engine.h"

using namespace hybridlsh;

namespace {

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Per-mille bucket, decorrelated from id order (and therefore from shard
// and segment layout) by a Knuth multiplicative hash.
uint32_t BucketOf(size_t id) {
  return static_cast<uint32_t>((id * 2654435761u) >> 12) % 1000;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::GetScale(argc, argv);
  std::printf("# Filtered pushdown vs post-filter QPS across predicate "
              "selectivities; fused two-clause RRF cost\n");
  bench::PrintScaleNote(scale);

  const double radius = 0.45;
  const data::DenseDataset full =
      data::MakeCorelLike(scale.N(68040, 4), 32, /*seed=*/411);
  const data::DenseSplit split =
      data::SplitQueries(full, scale.num_queries, /*seed=*/412);
  const size_t batch_repeats = scale.full ? 10 : 4;
  data::DenseDataset batch(0, split.queries.dim());
  for (size_t r = 0; r < batch_repeats; ++r) {
    for (size_t q = 0; q < split.queries.size(); ++q) {
      batch.Append({split.queries.point(q), split.queries.dim()});
    }
  }

  data::AttributeStore attributes;
  attributes.AddColumn("bucket");
  for (size_t id = 0; id < split.base.size(); ++id) {
    const uint32_t row[1] = {BucketOf(id)};
    attributes.AppendRow(row);
  }

  using Engine = engine::ShardedEngine<lsh::PStableFamily>;
  Engine::Options options;
  options.num_shards = 2;
  options.index.num_tables = 50;
  options.index.k = 7;
  options.index.seed = 413;
  options.searcher.cost_model = core::CostModel::FromRatio(6.0);
  auto built = Engine::Build(lsh::PStableFamily::L2(split.base.dim(), 2 * radius),
                             split.base, options);
  HLSH_CHECK(built.ok());
  Engine& engine = *built;
  engine.AttachAttributes(&attributes);

  std::printf("# n=%zu batch=%zu d=32 L=50 k=7 radius=%.2f beta/alpha=6 "
              "shards=2\n",
              split.base.size(), batch.size(), radius);

  // Warmup: builds per-worker scratch on both paths.
  HLSH_CHECK(engine.QueryBatch(batch, engine::QuerySpec::Radius(radius)).ok());

  // The sweep: per-mille thresholds 1, 10, 100, 500.
  for (const uint32_t per_mille : {1u, 10u, 100u, 500u}) {
    const data::Predicate pred = data::Predicate::Between(0, 0, per_mille - 1);
    engine::QuerySpec spec = engine::QuerySpec::Radius(radius);
    spec.predicate = &pred;

    std::vector<double> pushdown_walls, postfilter_walls;
    size_t pushdown_results = 0, postfilter_results = 0;
    for (int run = 0; run < 3; ++run) {
      double wall = 0;
      auto pushed = engine.QueryBatch(batch, spec, &wall);
      HLSH_CHECK(pushed.ok());
      pushdown_walls.push_back(wall);
      pushdown_results = 0;
      for (const auto& r : *pushed) pushdown_results += r.neighbors.size();

      // The alternative under measurement: unfiltered batch, then drop
      // non-matching ids. The predicate evaluation itself is part of the
      // cost (it is exactly what the pushdown pays in its filter stage).
      util::WallTimer timer;
      auto unfiltered = engine.QueryBatch(batch, radius);
      postfilter_results = 0;
      for (const auto& r : unfiltered) {
        for (const uint32_t id : r.neighbors) {
          postfilter_results += pred.Matches(attributes, id);
        }
      }
      postfilter_walls.push_back(timer.ElapsedSeconds());
    }
    // The pushdown never misses a result the post-filter keeps: when the
    // selectivity flips it to the exact linear scan it can only find MORE
    // than the LSH-answered unfiltered query (recall < 1). Strategy-for-
    // strategy bit-identity is property-tested, not asserted here.
    HLSH_CHECK(pushdown_results >= postfilter_results);

    const double qps_pushdown =
        static_cast<double>(batch.size()) / Median(pushdown_walls);
    const double qps_postfilter =
        static_cast<double>(batch.size()) / Median(postfilter_walls);
    std::printf(
        "{\"bench\":\"filtered_fusion\",\"mode\":\"pushdown_vs_postfilter\","
        "\"metric\":\"L2\",\"n\":%zu,\"dim\":32,\"batch\":%zu,"
        "\"radius\":%.2f,\"selectivity_pct\":%.1f,"
        "\"qps_pushdown\":%.1f,\"qps_postfilter\":%.1f,"
        "\"avg_results_per_query\":%.1f,"
        "\"speedup_pushdown_vs_postfilter\":%.2f}\n",
        split.base.size(), batch.size(), radius,
        static_cast<double>(per_mille) / 10.0, qps_pushdown, qps_postfilter,
        static_cast<double>(pushdown_results) /
            static_cast<double>(batch.size()),
        qps_pushdown / qps_postfilter);
  }

  // Fused context row: two-clause RRF (radius, 1.5 * radius) versus the
  // two single-radius queries it replaces, sequential on one thread.
  {
    engine::QuerySpec fused;
    fused.subqueries.push_back({radius, 1.0, std::nullopt, false});
    fused.subqueries.push_back({1.5 * radius, 0.5, std::nullopt, false});
    std::vector<core::FusedHit> hits;
    std::vector<uint32_t> out;
    std::vector<double> fused_walls, sequential_walls;
    for (int run = 0; run < 3; ++run) {
      {
        util::WallTimer timer;
        for (size_t q = 0; q < split.queries.size(); ++q) {
          hits.clear();
          HLSH_CHECK(engine.QueryFused(split.queries.point(q), fused, &hits).ok());
        }
        fused_walls.push_back(timer.ElapsedSeconds());
      }
      {
        util::WallTimer timer;
        for (size_t q = 0; q < split.queries.size(); ++q) {
          for (const auto& sub : fused.subqueries) {
            out.clear();
            engine.Query(split.queries.point(q), sub.radius, &out);
          }
        }
        sequential_walls.push_back(timer.ElapsedSeconds());
      }
    }
    const double fused_qps =
        static_cast<double>(split.queries.size()) / Median(fused_walls);
    std::printf(
        "{\"bench\":\"filtered_fusion\",\"mode\":\"fused_two_radii_rrf\","
        "\"metric\":\"L2\",\"n\":%zu,\"dim\":32,\"radius\":%.2f,"
        "\"qps\":%.1f,\"wall_vs_two_sequential\":%.2f}\n",
        split.base.size(), radius, fused_qps,
        Median(fused_walls) / Median(sequential_walls));
  }
  return 0;
}
