// Cold-start benchmark: restoring an engine from a snapshot vs rebuilding
// it from the raw dataset.
//
// Rebuild cost is the hash bill — n * L signatures plus table construction
// — while restore is pure IO + parse: tables, sketches, and functions
// reload as bytes (zero hash evaluations, asserted below). Each row is one
// JSON object on its own line:
//
//   {"bench":"snapshot","n":...,"build_seconds":...,"save_seconds":...,
//    "restore_seconds":...,"restore_mmap_seconds":...,
//    "speedup_restore_vs_build":...,"snapshot_bytes":...}
//
// Default run sweeps small sizes (CI-friendly); --full adds the 1M-point
// row the acceptance criterion pins (restore >= 10x faster than rebuild).

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/hybridlsh.h"
#include "engine/sharded_engine.h"

namespace {

namespace fs = std::filesystem;
using namespace hybridlsh;
using L2Engine = engine::ShardedEngine<lsh::PStableFamily>;

constexpr size_t kDim = 16;
constexpr double kRadius = 0.4;

uint64_t DirBytes(const std::string& root) {
  uint64_t total = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

void RunOne(size_t n) {
  const data::DenseDataset dataset = data::MakeCorelLike(n, kDim, 7);

  L2Engine::Options options;
  options.num_shards = 4;
  options.num_threads = 4;
  // The paper's serving configuration (L = 50, k = 7): what a production
  // engine actually rebuilds on restart.
  options.index.num_tables = 50;
  options.index.k = 7;
  options.index.seed = 11;
  options.searcher.cost_model = core::CostModel::FromRatio(6.0);

  util::WallTimer build_timer;
  auto engine = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                                dataset, options);
  HLSH_CHECK(engine.ok());
  const double build_seconds = build_timer.ElapsedSeconds();

  const std::string root =
      (fs::temp_directory_path() / ("hlsh_bench_snap_" + std::to_string(n)))
          .string();
  fs::remove_all(root);
  util::WallTimer save_timer;
  HLSH_CHECK(engine->SaveSnapshot(root).ok());
  const double save_seconds = save_timer.ElapsedSeconds();
  const uint64_t snapshot_bytes = DirBytes(root);

  lsh::SetHashEvalCounting(true);
  const uint64_t evals_before = lsh::HashEvalCountForTest();
  util::WallTimer restore_timer;
  data::DenseDataset restored_dataset;
  auto restored = L2Engine::OpenSnapshot(root, &restored_dataset);
  HLSH_CHECK(restored.ok());
  const double restore_seconds = restore_timer.ElapsedSeconds();
  HLSH_CHECK(lsh::HashEvalCountForTest() == evals_before);
  lsh::SetHashEvalCounting(false);

  util::WallTimer mmap_timer;
  data::DenseDataset mmap_dataset;
  engine::snapshot::OpenOptions mmap_options;
  mmap_options.use_mmap = true;
  auto mmap_restored = L2Engine::OpenSnapshot(root, &mmap_dataset,
                                              mmap_options);
  HLSH_CHECK(mmap_restored.ok());
  const double restore_mmap_seconds = mmap_timer.ElapsedSeconds();

  // Spot-check equivalence so the numbers describe a CORRECT restore.
  std::vector<uint32_t> out_a, out_b, out_c;
  for (size_t q = 0; q < 16; ++q) {
    out_a.clear();
    out_b.clear();
    out_c.clear();
    const float* query = dataset.point((q * 997) % n);
    engine->Query(query, kRadius, &out_a);
    restored->Query(query, kRadius, &out_b);
    mmap_restored->Query(query, kRadius, &out_c);
    HLSH_CHECK(out_a == out_b && out_a == out_c);
  }

  std::printf(
      "{\"bench\":\"snapshot\",\"metric\":\"L2\",\"n\":%zu,\"dim\":%zu,"
      "\"shards\":4,\"tables\":50,\"k\":7,"
      "\"build_seconds\":%.4f,\"save_seconds\":%.4f,"
      "\"restore_seconds\":%.4f,\"restore_mmap_seconds\":%.4f,"
      "\"speedup_restore_vs_build\":%.1f,\"snapshot_bytes\":%" PRIu64 "}\n",
      n, kDim, build_seconds, save_seconds, restore_seconds,
      restore_mmap_seconds, build_seconds / restore_seconds, snapshot_bytes);
  std::fflush(stdout);
  fs::remove_all(root);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  std::printf("# Snapshot cold start: rebuild vs restore (dim=%zu, L=50, "
              "k=7, 4 shards)\n",
              kDim);
  RunOne(50000);
  RunOne(200000);
  if (full) {
    RunOne(1000000);
  } else {
    std::printf("# pass --full for the 1M-point row\n");
  }
  return 0;
}
