// Quickstart: build a hybrid LSH index over an L2 point set and answer
// r-near-neighbor-reporting (rNNR) queries.
//
// The hybrid searcher (Pham, EDBT 2017) estimates, per query, whether
// classic LSH-based search or a plain linear scan will be cheaper — using
// HyperLogLog sketches embedded in every LSH bucket — and runs the winner.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/hybridlsh.h"

using namespace hybridlsh;

int main() {
  // 1. Data: 20,000 points in 32 dimensions with mixed cluster densities.
  //    In a real application you would load your own vectors (see data/io.h
  //    for fvecs / csv / libsvm readers).
  const size_t dim = 32;
  const double radius = 0.45;
  const data::DenseDataset full = data::MakeCorelLike(20000, dim, /*seed=*/1);

  // Hold out 5 points as queries (the paper's protocol).
  const data::DenseSplit split = data::SplitQueries(full, 5, /*seed=*/2);
  const data::DenseDataset& points = split.base;

  // 2. Index: 50 tables of 2-stable (Gaussian) projections for L2 distance.
  //    The paper ties the quantization window to the radius (w = 2r) and
  //    k is derived from (radius, delta) by the E2LSH rule.
  lsh::PStableFamily family = lsh::PStableFamily::L2(dim, 2 * radius);
  L2Index::Options options;
  options.num_tables = 50;
  options.k = 0;  // auto: k = ceil(log(1 - delta^(1/L)) / log p1)
  options.delta = 0.1;
  options.radius = radius;
  options.num_build_threads = 8;
  auto index = L2Index::Build(family, points, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("index: n=%zu L=%d k=%d p1(r)=%.3f recall>=%.3f sketches=%zu\n",
              index->size(), index->num_tables(), index->k(),
              index->stats().p1_at_radius, index->stats().recall_lower_bound,
              index->stats().total_sketches);

  // 3. Searcher: the cost model's beta/alpha ratio is the price of one
  //    distance computation in units of one dedup operation. Measure it
  //    (core::CostCalibrator) or pin it like the paper does (Corel: 6).
  core::SearcherOptions searcher_options;
  searcher_options.cost_model = core::CostModel::FromRatio(6.0);
  L2Searcher searcher(&*index, &points, searcher_options);

  // 4. Queries: the searcher reports every point within `radius` with
  //    probability >= 1 - delta, choosing LSH or linear per query.
  std::vector<uint32_t> neighbors;
  core::QueryStats stats;
  for (size_t q = 0; q < split.queries.size(); ++q) {
    neighbors.clear();
    searcher.Query(split.queries.point(q), radius, &neighbors, &stats);
    std::printf(
        "query %zu: strategy=%-6s  neighbors=%-5zu  collisions=%-6llu "
        "candSize~%-7.0f (actual %zu)  cost lsh=%.0f linear=%.0f\n",
        q, std::string(core::StrategyName(stats.strategy)).c_str(),
        neighbors.size(), static_cast<unsigned long long>(stats.collisions),
        stats.cand_estimate, stats.cand_actual, stats.lsh_cost,
        stats.linear_cost);
  }

  // 5. Recall check against exact ground truth (linear scan).
  double recall = 0;
  for (size_t q = 0; q < split.queries.size(); ++q) {
    const auto truth = data::RangeScanDense(points, split.queries.point(q),
                                            radius, data::Metric::kL2);
    neighbors.clear();
    searcher.Query(split.queries.point(q), radius, &neighbors);
    recall += data::Recall(neighbors, truth);
  }
  std::printf("average recall over %zu queries: %.3f (target >= %.2f)\n",
              split.queries.size(), recall / split.queries.size(),
              1.0 - options.delta);
  return 0;
}
