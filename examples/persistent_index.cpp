// Build once, serve forever: parameter planning, index persistence, and
// parallel batch serving.
//
//   1. Plan (k, L) with the cost-based planner instead of the paper's
//      fixed L = 50 rule;
//   2. build and Save() the index;
//   3. Load() it back (as a restarted server would) and verify it is
//      byte-identical in behaviour;
//   4. answer a query batch in parallel with core::BatchQuery.
//
//   $ ./build/examples/persistent_index

#include <cstdio>
#include <filesystem>

#include "core/batch_query.h"
#include "core/hybridlsh.h"
#include "lsh/planner.h"

using namespace hybridlsh;

int main() {
  const size_t dim = 32;
  const double radius = 0.45;
  const data::DenseDataset full = data::MakeCorelLike(30000, dim, /*seed=*/1);
  const data::DenseSplit split = data::SplitQueries(full, 64, /*seed=*/2);

  // 1. Plan parameters from the family's collision probabilities and a
  //    rough output-density guess (here: sampled on 200 base points).
  lsh::PStableFamily family = lsh::PStableFamily::L2(dim, 2 * radius);
  lsh::PlannerInput planner_input;
  planner_input.p_near = family.CollisionProbability(radius);
  planner_input.p_far = family.CollisionProbability(3 * radius);
  planner_input.n = split.base.size();
  planner_input.beta_over_alpha = 6.0;
  {
    const auto sample = data::RangeScanDense(split.base, split.base.point(0),
                                             radius, data::Metric::kL2);
    planner_input.near_fraction =
        std::max(1e-4, static_cast<double>(sample.size()) /
                           static_cast<double>(split.base.size()));
  }
  const auto plan = lsh::PlanParameters(planner_input);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("planned k=%d L=%d (model recall %.3f, cost %.0f alpha-units)\n",
              plan->k, plan->num_tables, plan->expected_recall,
              plan->expected_cost);

  // 2. Build with the planned parameters and persist.
  L2Index::Options options;
  options.k = plan->k;
  options.num_tables = plan->num_tables;
  options.num_build_threads = 8;
  auto index = L2Index::Build(family, split.base, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n", index.status().ToString().c_str());
    return 1;
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "corel_like.hlshidx").string();
  if (auto status = index->Save(path); !status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved %zu points x %d tables to %s (%.1f MiB)\n", index->size(),
              index->num_tables(), path.c_str(),
              static_cast<double>(std::filesystem::file_size(path)) /
                  (1024 * 1024));

  // 3. Reload, as a fresh process would.
  auto loaded = L2Index::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }

  // 4. Serve the 64-query batch across 8 threads.
  core::SearcherOptions sopts;
  sopts.cost_model = core::CostModel::FromRatio(6.0);
  double wall_seconds = 0;
  const auto batch =
      core::BatchQuery(*loaded, split.base, split.queries, radius, sopts,
                       /*num_threads=*/8, &wall_seconds);
  const core::BatchSummary summary = core::Summarize(batch, wall_seconds);
  std::printf(
      "batch: %zu queries in %.3fs wall (%.0f QPS), outputs avg %.1f "
      "[min %zu, max %zu], %.1f%% via linear scan\n",
      summary.num_queries, summary.wall_seconds, summary.qps(),
      summary.avg_output, summary.min_output, summary.max_output,
      summary.pct_linear_calls());

  // Spot-check recall against exact ground truth.
  double recall = 0;
  for (size_t q = 0; q < split.queries.size(); ++q) {
    const auto truth = data::RangeScanDense(split.base, split.queries.point(q),
                                            radius, data::Metric::kL2);
    recall += data::Recall(batch[q].neighbors, truth);
  }
  std::printf("average recall %.3f (planned >= %.3f)\n",
              recall / split.queries.size(), plan->expected_recall);
  std::filesystem::remove(path);
  return 0;
}
