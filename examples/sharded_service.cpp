// Sharded serving: one runtime-polymorphic engine handle per corpus.
//
// A service rarely gets to name LshIndex<Family> in its types — the metric
// comes from a config file or a request header. This example builds two
// sharded engines (L2 over dense vectors, Hamming over packed codes)
// through the metric-keyed registry and serves both from a single
// std::vector<std::unique_ptr<engine::SearchEngine>>.
//
// Each shard runs the paper's full hybrid decision against its *own* size
// (LinearCost(shard_n)), so a small or dense shard can fall back to an
// exact scan of its range while the others stay on LSH — watch the
// lsh_shards / linear_shards split in the output.
//
//   $ ./build/examples/sharded_service

#include <cstdio>
#include <memory>
#include <vector>

#include "core/hybridlsh.h"
#include "engine/search_engine.h"

using namespace hybridlsh;

int main() {
  // 1. Two corpora with different representations and metrics.
  const data::DenseSplit dense =
      data::SplitQueries(data::MakeCorelLike(30000, 32, /*seed=*/1), 64, 2);
  const data::BinarySplit binary = data::SplitQueriesBinary(
      data::MakeRandomCodes(20000, 64, /*seed=*/3), 64, 4);

  // 2. Build both engines through the registry: 8 id-range shards each,
  //    built in parallel on the engine's persistent pool.
  engine::EngineOptions options;
  options.num_shards = 8;
  options.num_threads = 8;
  options.num_tables = 50;
  options.k = 7;
  options.seed = 5;
  options.radius = 0.45;  // k/w derivation input for the L2 family (w = 2r)
  options.searcher.cost_model = core::CostModel::FromRatio(6.0);

  const std::vector<std::pair<data::Metric, engine::AnyDataset>> corpora = {
      {data::Metric::kL2, &dense.base},
      {data::Metric::kHamming, &binary.base},
  };
  std::vector<std::unique_ptr<engine::SearchEngine>> engines;
  for (const auto& [metric, dataset] : corpora) {
    auto built = engine::BuildEngine(metric, dataset, options);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    std::printf("engine[%s]: n=%zu shards=%zu built in %.2fs (%.1f MiB)\n",
                std::string(data::MetricName(metric)).c_str(),
                (*built)->size(), (*built)->num_shards(),
                (*built)->stats().build_seconds,
                static_cast<double>((*built)->stats().memory_bytes) /
                    (1024 * 1024));
    engines.push_back(std::move(*built));
  }

  // 3. Single query with per-shard observability, through the typed
  //    overload matching each engine's point representation.
  std::vector<uint32_t> neighbors;
  engine::ShardedQueryStats stats;
  HLSH_CHECK(engines[0]
                 ->Query(dense.queries.point(0), 0.45, &neighbors, &stats)
                 .ok());
  std::printf("L2 query: %zu neighbors, %zu/%zu shards chose LSH\n",
              neighbors.size(), stats.lsh_shards, stats.num_shards);
  neighbors.clear();
  HLSH_CHECK(engines[1]
                 ->Query(binary.queries.point(0), 12.0, &neighbors, &stats)
                 .ok());
  std::printf("Hamming query: %zu neighbors, %zu/%zu shards chose LSH\n",
              neighbors.size(), stats.lsh_shards, stats.num_shards);

  // 4. Batches: pooled execution with per-worker scratch reuse.
  double wall_seconds = 0;
  auto dense_batch = engines[0]->QueryBatch(dense.queries, 0.45, &wall_seconds);
  HLSH_CHECK(dense_batch.ok());
  std::printf("L2 batch: %zu queries in %.3fs wall (%.0f QPS)\n",
              dense_batch->size(), wall_seconds,
              static_cast<double>(dense_batch->size()) / wall_seconds);
  auto binary_batch =
      engines[1]->QueryBatch(binary.queries, 12.0, &wall_seconds);
  HLSH_CHECK(binary_batch.ok());
  std::printf("Hamming batch: %zu queries in %.3fs wall (%.0f QPS)\n",
              binary_batch->size(), wall_seconds,
              static_cast<double>(binary_batch->size()) / wall_seconds);

  // 5. A mismatched representation is rejected, not UB: the L2 engine
  //    refuses a packed-binary query at runtime.
  const util::Status mismatch =
      engines[0]->Query(binary.queries.point(0), 0.45, &neighbors);
  std::printf("mismatched query -> %s\n", mismatch.ToString().c_str());
  return 0;
}
