// Crash-safe persistence: snapshot a serving engine in one process,
// restore it in another, and verify the restored engine answers byte-for-
// byte identically.
//
// The two phases run as separate processes on purpose — the gap between
// them is the "crash". CI drives exactly this sequence (build -> snapshot
// -> process exit -> restore -> verify):
//
//   $ ./build/examples/snapshot_restore save /tmp/hlsh_snapshot
//   $ ./build/examples/snapshot_restore load /tmp/hlsh_snapshot
//
// `save` builds a sharded cosine engine over synthetic data, churns it
// (inserts + tombstones, enough to seal segments), snapshots it, and
// writes every query's expected result ids to <dir>/expected.txt. `load`
// knows nothing about the engine's type: OpenSnapshotEngine reads the
// manifest, rebuilds the right typed engine behind the facade without
// evaluating a single hash function, and the example replays the queries
// against expected.txt. Exit code 0 = bit-identical restore.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/hybridlsh.h"
#include "engine/search_engine.h"

using namespace hybridlsh;

namespace {

constexpr size_t kDim = 24;
constexpr double kRadius = 0.2;
constexpr size_t kNumQueries = 50;

/// The deterministic query set both phases regenerate.
data::DenseDataset MakeQueries() {
  return data::SplitQueries(
             data::MakeWebspamLike({.n = 12000, .dim = kDim, .seed = 21}),
             kNumQueries, 22)
      .queries;
}

int Save(const std::string& dir) {
  data::DenseDataset dataset =
      data::SplitQueries(
          data::MakeWebspamLike({.n = 12000, .dim = kDim, .seed = 21}),
          kNumQueries, 22)
          .base;
  dataset.PrecomputeNorms();  // the cache travels with the snapshot

  engine::EngineOptions options;
  options.num_shards = 4;
  options.num_tables = 20;
  options.k = 12;
  options.seed = 23;
  options.active_seal_threshold = 256;
  options.searcher.cost_model = core::CostModel::FromRatio(10.0);
  auto engine =
      engine::BuildMutableEngine(data::Metric::kCosine, &dataset, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // Churn: the snapshot must carry mid-lifecycle state, not a fresh build.
  std::vector<float> staging(kDim, 0.0f);
  for (size_t i = 0; i < 700; ++i) {
    for (size_t d = 0; d < kDim; ++d) {
      staging[d] = static_cast<float>((i * 31 + d * 7) % 97) / 97.0f;
    }
    if (!(*engine)->Insert(staging.data()).ok()) return 1;
  }
  for (uint32_t id = 0; id < 2000; id += 13) {
    if (!(*engine)->Remove(id).ok()) return 1;
  }

  const auto snapshot_status = (*engine)->SaveSnapshot(dir);
  if (!snapshot_status.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot_status.ToString().c_str());
    return 1;
  }

  // Record what the live engine answers; the restore phase must match it.
  const data::DenseDataset queries = MakeQueries();
  std::ofstream expected(dir + "/expected.txt");
  std::vector<uint32_t> out;
  size_t total = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    out.clear();
    if (!(*engine)->Query(queries.point(q), kRadius, &out).ok()) return 1;
    expected << q;
    for (uint32_t id : out) expected << ' ' << id;
    expected << '\n';
    total += out.size();
  }
  std::printf("snapshot saved: %zu live points, %zu queries, %zu results\n",
              (*engine)->size(), queries.size(), total);
  return 0;
}

int Load(const std::string& dir) {
  auto engine = engine::OpenSnapshotEngine(dir);
  if (!engine.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("restored %s engine: %zu live points, %zu shards\n",
              std::string(data::MetricName((*engine)->metric())).c_str(),
              (*engine)->size(), (*engine)->num_shards());

  const data::DenseDataset queries = MakeQueries();
  std::ifstream expected(dir + "/expected.txt");
  if (!expected) {
    std::fprintf(stderr, "missing expected.txt (run the save phase first)\n");
    return 1;
  }
  std::string line;
  std::vector<uint32_t> out;
  size_t checked = 0;
  while (std::getline(expected, line)) {
    std::istringstream row(line);
    size_t q = 0;
    row >> q;
    std::vector<uint32_t> want;
    for (uint32_t id = 0; row >> id;) want.push_back(id);
    out.clear();
    if (!(*engine)->Query(queries.point(q), kRadius, &out).ok()) return 1;
    if (out != want) {
      std::fprintf(stderr, "MISMATCH on query %zu: got %zu ids, want %zu\n",
                   q, out.size(), want.size());
      return 1;
    }
    ++checked;
  }
  std::printf("verified %zu queries: results identical to the pre-kill "
              "engine\n",
              checked);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3 || (std::strcmp(argv[1], "save") != 0 &&
                    std::strcmp(argv[1], "load") != 0)) {
    std::fprintf(stderr, "usage: %s save|load <snapshot-dir>\n", argv[0]);
    return 2;
  }
  return std::strcmp(argv[1], "save") == 0 ? Save(argv[2]) : Load(argv[2]);
}
