// Streaming ingest: a live index that absorbs inserts and deletes while
// serving.
//
// The classic LshIndex is one-shot — Build() over a frozen dataset. This
// example walks the mutable lifecycle instead (engine/segmented_index.h,
// served through the type-erased facade):
//
//   1. BuildMutableEngine   — engine over the initial corpus, armed for
//                             updates;
//   2. Insert               — new points stream into per-shard ACTIVE
//                             segments (hash-map buckets, no sketches) and
//                             are immediately queryable; at the seal
//                             threshold a segment freezes into CSR tables
//                             with fresh HLL sketches;
//   3. Remove               — deletes tombstone ids; dead points stop
//                             being reported at once but stay in their
//                             buckets until compaction (HLL sketches merge
//                             but never subtract — deletion has to be
//                             architectural);
//   4. Compact              — merges every segment into one, dropping
//                             tombstones and rebuilding sketches.
//
//   $ ./build/examples/streaming_ingest

#include <cstdio>
#include <vector>

#include "core/hybridlsh.h"
#include "engine/search_engine.h"

using namespace hybridlsh;

namespace {

size_t CountHits(engine::SearchEngine& engine,
                 const data::DenseDataset& queries, double radius) {
  std::vector<uint32_t> out;
  size_t hits = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    out.clear();
    HLSH_CHECK(engine.Query(queries.point(q), radius, &out).ok());
    hits += out.size();
  }
  return hits;
}

}  // namespace

int main() {
  const double radius = 0.45;
  const size_t dim = 32;

  // The initial corpus plus a stream of future points.
  const data::DenseSplit split =
      data::SplitQueries(data::MakeCorelLike(24000, dim, /*seed=*/1), 48, 2);
  const data::DenseDataset incoming = data::MakeCorelLike(8000, dim, 3);

  // The dataset the engine grows. It must outlive the engine and stay
  // owned by the caller — the engine appends to it on Insert.
  data::DenseDataset dataset(0, dim);
  for (size_t i = 0; i < split.base.size(); ++i) {
    dataset.Append({split.base.point(i), dim});
  }

  engine::EngineOptions options;
  options.num_shards = 4;
  options.num_tables = 50;
  options.k = 7;
  options.seed = 5;
  options.radius = radius;  // w = 2r for the L2 family
  options.active_seal_threshold = 2048;
  options.max_sealed_segments = 4;  // auto-compact past this many
  options.searcher.cost_model = core::CostModel::FromRatio(6.0);

  auto built =
      engine::BuildMutableEngine(data::Metric::kL2, &dataset, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  engine::SearchEngine& engine = **built;
  std::printf("built: %zu live points, %zu shards\n", engine.size(),
              engine.num_shards());
  std::printf("baseline hits over %zu queries: %zu\n", split.queries.size(),
              CountHits(engine, split.queries, radius));

  // Stream inserts; every new point is queryable immediately.
  for (size_t i = 0; i < incoming.size(); ++i) {
    auto id = engine.Insert(incoming.point(i));
    HLSH_CHECK(id.ok());
  }
  std::printf("after %zu inserts: %zu live points, hits: %zu\n",
              incoming.size(), engine.size(),
              CountHits(engine, split.queries, radius));

  // Delete a slice of the original corpus; reported results drop at once.
  const uint32_t removed_n = 6000;
  for (uint32_t id = 0; id < removed_n; ++id) {
    HLSH_CHECK(engine.Remove(id).ok());
  }
  std::printf("after %u removes: %zu live points, hits: %zu\n", removed_n,
              engine.size(), CountHits(engine, split.queries, radius));

  // Compaction reclaims the tombstoned entries and rebuilds sketches. The
  // candidate sets are unchanged (same hash functions, same live points),
  // but hit counts can dip a little: with the dead ids gone the LSH cost
  // estimate drops, so shards that were falling back to the exact linear
  // scan may switch to (probabilistic) LSH-based search.
  util::WallTimer timer;
  HLSH_CHECK(engine.Compact().ok());
  std::printf("compacted in %.3fs: %zu live points, hits: %zu\n",
              timer.ElapsedSeconds(), engine.size(),
              CountHits(engine, split.queries, radius));
  return 0;
}
