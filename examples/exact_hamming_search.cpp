// Exact (zero-false-negative) Hamming rNNR with covering LSH + hybrid
// search — the combination the paper proposes as future work (§5).
//
// Classic LSH misses each neighbor with probability up to delta. Pagh's
// covering LSH (SODA'16) replaces the L independent tables with
// 2^(r+1) - 1 correlated masked tables that *guarantee* a collision for
// every point within Hamming distance r. On top, the hybrid cost model
// still applies: buckets carry HyperLogLog sketches, and dense queries
// fall back to the (equally exact) linear scan when cheaper.
//
//   $ ./build/examples/exact_hamming_search

#include <cstdio>
#include <vector>

#include "core/hybridlsh.h"

using namespace hybridlsh;

int main() {
  const size_t width = 64;
  const uint32_t radius = 5;  // tables: 2^6 - 1 = 63

  // 50,000 random 64-bit codes plus planted near-duplicates.
  data::BinaryDataset codes = data::MakeRandomCodes(50000, width, 21);
  util::Rng rng(22);
  data::BinaryDataset queries(0, width);
  for (int q = 0; q < 8; ++q) {
    const uint64_t query = codes.point(static_cast<size_t>(q) * 6000)[0];
    data::PlantNeighborsHamming(&codes, &query, radius, 4, &rng);
    queries.Append(&query);
  }

  lsh::CoveringLshIndex::Options options;
  options.radius = radius;
  options.num_build_threads = 8;
  auto index = lsh::CoveringLshIndex::Build(codes, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("covering index: %d masked tables for radius %u (%.1f MiB)\n",
              index->num_tables(), index->radius(),
              static_cast<double>(index->MemoryBytes()) / (1024 * 1024));

  core::SearcherOptions searcher_options;
  searcher_options.cost_model = core::CostModel::FromRatio(1.0);
  CoveringSearcher searcher(&*index, &codes, searcher_options);

  std::vector<uint32_t> out;
  core::QueryStats stats;
  size_t exact_matches = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    out.clear();
    searcher.Query(queries.point(q), radius, &out, &stats);
    const auto truth = data::RangeScanBinary(codes, queries.point(q), radius);
    const bool exact = data::Recall(out, truth) == 1.0 &&
                       out.size() == truth.size();
    exact_matches += exact;
    std::printf("query %zu: %zu neighbors, strategy=%s, exact=%s\n", q,
                out.size(),
                std::string(core::StrategyName(stats.strategy)).c_str(),
                exact ? "yes" : "NO");
  }
  std::printf("%zu/%zu queries answered exactly (expected: all — covering\n"
              "LSH has no false negatives and S3 removes false positives)\n",
              exact_matches, queries.size());
  return exact_matches == queries.size() ? 0 : 1;
}
