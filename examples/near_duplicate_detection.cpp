// Near-duplicate document detection under cosine distance — the paper's
// motivating application (finding near-duplicate web pages, Henzinger
// SIGIR'06) and the regime where the hybrid strategy shines.
//
// A Webspam-like corpus contains a large block of near-duplicate documents
// (spam farms) plus a diffuse remainder. For a query inside the duplicate
// farm, classic LSH collides with thousands of duplicates in most of its
// 50 tables and spends its time deduplicating them — a linear scan is
// cheaper. For a query outside, LSH answers from a handful of points. The
// hybrid searcher detects the difference per query, before executing,
// from the HyperLogLog sketches in the probed buckets.
//
//   $ ./build/examples/near_duplicate_detection

#include <cstdio>
#include <vector>

#include "core/hybridlsh.h"

using namespace hybridlsh;

int main() {
  const size_t dim = 128;
  const double radius = 0.08;  // cosine distance threshold for "duplicate"

  // Corpus: 40,000 documents as unit-norm term vectors; 50% sit in a
  // near-duplicate farm with a density gradient, 50% are ordinary.
  data::WebspamLikeConfig config;
  config.n = 40000;
  config.dim = dim;
  config.cluster_fraction = 0.5;
  config.eps_min = 0.03;
  config.eps_max = 0.35;
  config.seed = 7;
  const data::DenseDataset corpus = data::MakeWebspamLike(config);

  // SimHash index: 50 tables, k auto-tuned for the radius at delta = 0.1.
  CosineIndex::Options options;
  options.num_tables = 50;
  options.delta = 0.1;
  options.radius = radius;
  options.num_build_threads = 8;
  auto index = CosineIndex::Build(lsh::SimHashFamily(dim), corpus, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n", index.status().ToString().c_str());
    return 1;
  }

  // The paper pins beta/alpha = 10 for Webspam; calibrate instead if your
  // hardware differs (core::CostCalibrator).
  core::SearcherOptions searcher_options;
  searcher_options.cost_model = core::CostModel::FromRatio(10.0);
  CosineSearcher searcher(&*index, &corpus, searcher_options);

  // Probe 6 documents from the farm and 6 ordinary ones.
  std::printf("%-10s %-9s %-10s %-12s %-10s\n", "query", "kind", "duplicates",
              "collisions", "strategy");
  std::vector<uint32_t> duplicates;
  core::QueryStats stats;
  int linear_calls = 0;
  for (int i = 0; i < 12; ++i) {
    const bool in_farm = i < 6;
    const size_t doc = in_farm ? static_cast<size_t>(i) * 3000
                               : 20000 + static_cast<size_t>(i - 6) * 3000;
    duplicates.clear();
    searcher.Query(corpus.point(doc), radius, &duplicates, &stats);
    linear_calls += stats.strategy == core::Strategy::kLinear;
    std::printf("doc %-6zu %-9s %-10zu %-12llu %-10s\n", doc,
                in_farm ? "farm" : "ordinary", duplicates.size(),
                static_cast<unsigned long long>(stats.collisions),
                std::string(core::StrategyName(stats.strategy)).c_str());
  }
  std::printf(
      "\n%d of 12 queries routed to linear search by the cost model\n"
      "(farm queries should dominate that count — they are the paper's\n"
      "\"hard\" q2 queries from Figure 1).\n",
      linear_calls);
  return 0;
}
