// k-diverse near neighbor search built on rNNR — the paper cites this
// application (Abbar et al., WWW'13: real-time recommendation of diverse
// related articles) as a building block for spherical range reporting.
//
// Pipeline: (1) report ALL articles within radius r of the query (that is
// exactly rNNR, served by the hybrid searcher); (2) greedily pick the k
// that maximize pairwise diversity (max-min distance). Step (2) needs the
// *complete* neighbor set — a k-NN index is not enough — which is why the
// application sits on rNNR.
//
//   $ ./build/examples/diverse_recommendation

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/hybridlsh.h"

using namespace hybridlsh;

namespace {

// Greedy max-min diversification: repeatedly add the candidate whose
// minimum distance to the already-picked set is largest.
std::vector<uint32_t> DiversifyGreedy(const data::DenseDataset& points,
                                      const float* query,
                                      const std::vector<uint32_t>& candidates,
                                      size_t k) {
  std::vector<uint32_t> picked;
  if (candidates.empty()) return picked;
  // Seed with the candidate closest to the query (most relevant).
  uint32_t best = candidates[0];
  float best_dist = 1e30f;
  for (uint32_t id : candidates) {
    const float d = data::CosineDistance(points.point(id), query, points.dim());
    if (d < best_dist) {
      best_dist = d;
      best = id;
    }
  }
  picked.push_back(best);
  while (picked.size() < k && picked.size() < candidates.size()) {
    uint32_t arg_max = candidates[0];
    float max_min = -1.0f;
    for (uint32_t id : candidates) {
      if (std::find(picked.begin(), picked.end(), id) != picked.end()) continue;
      float min_d = 1e30f;
      for (uint32_t p : picked) {
        min_d = std::min(min_d, data::CosineDistance(points.point(id),
                                                     points.point(p),
                                                     points.dim()));
      }
      if (min_d > max_min) {
        max_min = min_d;
        arg_max = id;
      }
    }
    picked.push_back(arg_max);
  }
  return picked;
}

}  // namespace

int main() {
  const size_t dim = 96;
  const double radius = 0.12;  // "related" = cosine distance <= 0.12
  const size_t k = 5;          // recommend 5 diverse articles

  // Article embeddings: clustered topics on the unit sphere.
  data::WebspamLikeConfig config;
  config.n = 30000;
  config.dim = dim;
  config.cluster_fraction = 0.4;
  config.eps_min = 0.05;
  config.eps_max = 0.40;
  config.seed = 11;
  const data::DenseDataset articles = data::MakeWebspamLike(config);

  CosineIndex::Options options;
  options.num_tables = 50;
  options.delta = 0.1;
  options.radius = radius;
  options.num_build_threads = 8;
  auto index = CosineIndex::Build(lsh::SimHashFamily(dim), articles, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n", index.status().ToString().c_str());
    return 1;
  }

  core::SearcherOptions searcher_options;
  searcher_options.cost_model = core::CostModel::FromRatio(10.0);
  CosineSearcher searcher(&*index, &articles, searcher_options);

  for (size_t doc : {size_t{100}, size_t{25000}}) {
    std::vector<uint32_t> related;
    core::QueryStats stats;
    searcher.Query(articles.point(doc), radius, &related, &stats);

    const auto picked = DiversifyGreedy(articles, articles.point(doc), related, k);
    std::printf("article %zu: %zu related (strategy=%s); %zu diverse picks:",
                doc, related.size(),
                std::string(core::StrategyName(stats.strategy)).c_str(),
                picked.size());
    for (uint32_t id : picked) std::printf(" %u", id);
    // Diversity achieved: min pairwise distance of the picked set.
    float min_pair = 2.0f;
    for (size_t i = 0; i < picked.size(); ++i) {
      for (size_t j = i + 1; j < picked.size(); ++j) {
        min_pair = std::min(min_pair,
                            data::CosineDistance(articles.point(picked[i]),
                                                 articles.point(picked[j]), dim));
      }
    }
    if (picked.size() >= 2) {
      std::printf("  (min pairwise distance %.3f)", min_pair);
    }
    std::printf("\n");
  }
  return 0;
}
