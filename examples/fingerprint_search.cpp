// Hamming-space rNNR over 64-bit SimHash fingerprints — the paper's MNIST
// pipeline (§4): reduce dense vectors to compact binary codes once, then
// serve near-neighbor reports with bit-sampling LSH where a distance
// computation is a single XOR + popcount.
//
// Because distances are so cheap in this regime (beta/alpha ~ 1), the
// hybrid decision is dominated by the collision term: only queries whose
// buckets are overwhelmingly duplicated fall back to the scan.
//
//   $ ./build/examples/fingerprint_search

#include <cstdio>
#include <vector>

#include "core/hybridlsh.h"

using namespace hybridlsh;

int main() {
  const size_t pixel_dim = 780;  // the paper's MNIST dimensionality
  const uint32_t radius = 14;    // Hamming radius, mid paper range 12..17

  // 1. "Images": 30,000 near-binary vectors in 10 prototype classes.
  const data::DenseDataset images = data::MakeMnistLike(30000, pixel_dim,
                                                        /*num_classes=*/10,
                                                        /*seed=*/3);

  // 2. Fingerprint once with 64 SimHash hyperplanes. Base set and queries
  //    must share the same Fingerprinter instance (same hyperplanes).
  const lsh::Fingerprinter fingerprinter(pixel_dim, 64, /*seed=*/4);
  auto codes = fingerprinter.Transform(images);
  if (!codes.ok()) {
    std::fprintf(stderr, "fingerprint failed: %s\n",
                 codes.status().ToString().c_str());
    return 1;
  }
  const data::BinarySplit split = data::SplitQueriesBinary(*codes, 10, 5);

  // 3. Bit-sampling index over the 64-bit codes.
  HammingIndex::Options options;
  options.num_tables = 50;
  options.delta = 0.1;
  options.radius = radius;
  options.num_build_threads = 8;
  auto index =
      HammingIndex::Build(lsh::BitSamplingFamily(64), split.base, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu fingerprints, L=%d k=%d\n", index->size(),
              index->num_tables(), index->k());

  // 4. Search. beta/alpha = 1 (paper's MNIST ratio): popcount distances
  //    cost about as much as dedup probes.
  core::SearcherOptions searcher_options;
  searcher_options.cost_model = core::CostModel::FromRatio(1.0);
  HammingSearcher searcher(&*index, &split.base, searcher_options);

  std::vector<uint32_t> neighbors;
  core::QueryStats stats;
  double recall = 0;
  for (size_t q = 0; q < split.queries.size(); ++q) {
    neighbors.clear();
    searcher.Query(split.queries.point(q), radius, &neighbors, &stats);
    const auto truth =
        data::RangeScanBinary(split.base, split.queries.point(q), radius);
    recall += data::Recall(neighbors, truth);
    std::printf(
        "query %zu: %-6s  reported=%zu / true=%zu  collisions=%llu  "
        "candSize~%.0f\n",
        q, std::string(core::StrategyName(stats.strategy)).c_str(),
        neighbors.size(), truth.size(),
        static_cast<unsigned long long>(stats.collisions), stats.cand_estimate);
  }
  std::printf("average recall: %.3f\n", recall / split.queries.size());
  return 0;
}
