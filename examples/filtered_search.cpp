// Filtered search: category-scoped near-duplicate queries through the
// composable query pipeline.
//
// A media library holds vectors for 30,000 assets, each tagged with a
// category and a year. "Find near-duplicates of this asset *among 2021
// sports clips*" is one QuerySpec: a radius plus a pushdown predicate.
// The engine evaluates the predicate into a bitmap once, composes it with
// the tombstone map, and pushes it below the distance kernels — a point
// the predicate rejects never pays a distance. At tight selectivities the
// cost model flips the query to a linear scan over the filter's survivors,
// which is both exact and far cheaper than an unfiltered query (see
// BENCH_filter.json for the measured ratios).
//
// The second half fuses two clauses into one ranked list: geometric
// near-duplicates (LSH) and an attribute-only clause boosting everything
// in the same category, merged by deterministic reciprocal-rank fusion.
//
//   $ ./build/examples/filtered_search

#include <cstdio>
#include <vector>

#include "core/hybridlsh.h"
#include "data/attributes.h"
#include "engine/query_pipeline.h"
#include "engine/sharded_engine.h"

using namespace hybridlsh;

namespace {
const char* kCategoryNames[] = {"news", "sports", "music", "film"};
}

int main() {
  // 1. Assets: 30,000 vectors in 32 dimensions, plus one attribute row per
  //    asset. Row r describes global id r; rows are append-only and
  //    columns must be declared before the first row.
  const size_t dim = 32;
  const double radius = 0.4;
  const data::DenseDataset full = data::MakeCorelLike(30000, dim, /*seed=*/7);
  const data::DenseSplit split = data::SplitQueries(full, 3, /*seed=*/8);
  const data::DenseDataset& assets = split.base;

  data::AttributeStore attributes;
  const size_t kCategory = attributes.AddColumn("category");
  const size_t kYear = attributes.AddColumn("year");
  for (size_t id = 0; id < assets.size(); ++id) {
    const uint32_t row[2] = {
        static_cast<uint32_t>((id * 2654435761u) >> 16) % 4,  // category
        2018 + static_cast<uint32_t>((id * 97) % 8),          // year
    };
    attributes.AppendRow(row);
  }

  // 2. Engine: a 4-shard hybrid-LSH engine, with the attribute table
  //    attached so predicates can resolve column ids.
  engine::ShardedEngine<lsh::PStableFamily>::Options options;
  options.num_shards = 4;
  options.index.num_tables = 50;
  options.index.k = 7;
  options.index.seed = 9;
  options.searcher.cost_model = core::CostModel::FromRatio(6.0);
  auto built = engine::ShardedEngine<lsh::PStableFamily>::Build(
      lsh::PStableFamily::L2(dim, 2 * radius), assets, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  auto& engine = *built;
  engine.AttachAttributes(&attributes);

  // 3. Filtered query: near-duplicates of each held-out asset, scoped to
  //    2021 sports clips (~3% of the library).
  const data::Predicate sports_2021 =
      data::Predicate::Equals(kCategory, 1).And({kYear, 2021, 2021});
  engine::QuerySpec scoped = engine::QuerySpec::Radius(radius);
  scoped.predicate = &sports_2021;

  std::printf("— scoped near-duplicate search (category=sports, year=2021) —\n");
  std::vector<uint32_t> ids;
  for (size_t q = 0; q < split.queries.size(); ++q) {
    ids.clear();
    engine::ShardedQueryStats stats;
    if (auto s = engine.Query(split.queries.point(q), scoped, &ids, &stats);
        !s.ok()) {
      std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("query %zu: %zu matches  (selectivity %.1f%%, survivors %zu, "
                "filter %.0f us)\n",
                q, ids.size(), 100.0 * stats.filter_selectivity,
                stats.filter_survivors, stats.filter_seconds * 1e6);
    for (size_t i = 0; i < ids.size() && i < 3; ++i) {
      const uint32_t id = ids[i];
      std::printf("    id %-6u %s %u\n", id,
                  kCategoryNames[attributes.value(kCategory, id)],
                  attributes.value(kYear, id));
    }
  }

  // 4. Fused query: rank geometric near-duplicates highest, but keep every
  //    same-category asset in the list as a weak signal. Two clauses, one
  //    snapshot, one ranked result.
  const data::Predicate same_category = data::Predicate::Equals(kCategory, 1);
  engine::QuerySpec fused;
  fused.predicate = &same_category;
  fused.subqueries.push_back({radius, /*weight=*/1.0, std::nullopt, false});
  fused.subqueries.push_back(
      {0.0, /*weight=*/0.05, std::nullopt, /*attribute_only=*/true});

  std::printf("— fused ranking (near-duplicate ∪ same-category, RRF) —\n");
  std::vector<core::FusedHit> hits;
  if (auto s = engine.QueryFused(split.queries.point(0), fused, &hits);
      !s.ok()) {
    std::fprintf(stderr, "fused query failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("query 0: %zu ranked hits, top 5:\n", hits.size());
  for (size_t i = 0; i < hits.size() && i < 5; ++i) {
    std::printf("    id %-6u score %.4f\n", hits[i].id, hits[i].score);
  }
  return 0;
}
