#!/usr/bin/env python3
"""Perf-regression smoke over the repo's JSON-lines bench format.

Compares a fresh bench run against a committed baseline (BENCH_*.json) and
fails when a gated metric regresses by more than the threshold (default
30%). Rows are matched by their identity fields (every field that is not a
measurement); rows present on only one side are reported but never fail
the check, so bench sweeps can grow without breaking CI.

By default only RATIO metrics are gated (speedup_vs_float_block,
speedup_vs_per_id_scalar, speedup_restore_vs_build): ratios compare two
code paths measured on the same machine in the same process, so they
transfer from the baseline machine to a CI runner. Absolute metrics
(mcand_per_sec, qps, ns_per_distance, latency percentiles) are
machine-dependent — gate them with --all-metrics only when the fresh run
and the baseline come from the same hardware.

Usage:
  check_bench_regression.py BASELINE FRESH [--threshold 0.30] [--all-metrics]

Exit status: 0 = no gated regressions, 1 = regression, 2 = usage/parse.
"""

import argparse
import json
import sys

# metric name -> direction ("higher" is better / "lower" is better).
RATIO_METRICS = {
    "speedup_vs_float_block": "higher",
    "speedup_vs_per_id_scalar": "higher",
    "speedup_restore_vs_build": "higher",
    "speedup_vs_scalar_single": "higher",
    "speedup_pushdown_vs_postfilter": "higher",
}
ABSOLUTE_METRICS = {
    "mcand_per_sec": "higher",
    "qps": "higher",
    "ns_per_distance": "lower",
    "ns_per_op": "lower",
    "ns_per_signature": "lower",
    "p50_us": "lower",
    "save_seconds": "lower",
    "restore_seconds": "lower",
    "restore_mmap_seconds": "lower",
}
# Measurements that are context, not gates: tail percentiles flap on
# shared runners, build/wall seconds fold dataset-generation noise in, and
# the rest are descriptive counters.
UNGATED = {
    "p95_us",
    "p99_us",
    "p99_vs_read_only",
    "build_seconds",
    "wall_seconds",
    "writer_ops",
    "writer_ops_per_sec",
    "avg_output",
    "pct_linear_shards",
    "hash_us_per_query",
    "hash_pct",
    "borderline_pct",
    "queries",
    "snapshot_bytes",
    "qps_pushdown",
    "qps_postfilter",
    "avg_results_per_query",
    "wall_vs_two_sequential",
}


def load_rows(path):
    rows = []
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{line_no}: bad JSON row: {e}")
    return rows


def row_key(row, measured):
    ignore = set(measured) | UNGATED
    return tuple(sorted((k, v) for k, v in row.items() if k not in ignore))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed fractional regression (default 0.30)")
    parser.add_argument("--all-metrics", action="store_true",
                        help="also gate machine-dependent absolute metrics")
    args = parser.parse_args()

    metrics = dict(RATIO_METRICS)
    if args.all_metrics:
        metrics.update(ABSOLUTE_METRICS)
    measured = set(RATIO_METRICS) | set(ABSOLUTE_METRICS)

    baseline = {}
    for row in load_rows(args.baseline):
        baseline[row_key(row, measured)] = row

    regressions = []
    compared = 0
    unmatched = 0
    for row in load_rows(args.fresh):
        key = row_key(row, measured)
        base = baseline.pop(key, None)
        if base is None:
            unmatched += 1
            continue
        for name, direction in metrics.items():
            if name not in row or name not in base:
                continue
            new, old = float(row[name]), float(base[name])
            if old <= 0:
                continue
            change = (new - old) / old
            if direction == "lower":
                change = -change
            compared += 1
            if change < -args.threshold:
                regressions.append((key, name, old, new, change))

    for key, name, old, new, change in regressions:
        ident = " ".join(f"{k}={v}" for k, v in key)
        print(f"REGRESSION {name}: {old:g} -> {new:g} ({change:+.0%}) [{ident}]")
    if unmatched or baseline:
        print(f"note: {unmatched} fresh row(s) without a baseline, "
              f"{len(baseline)} baseline row(s) not reproduced (not gated)")
    print(f"checked {compared} metric value(s) at threshold "
          f"{args.threshold:.0%}: {len(regressions)} regression(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
